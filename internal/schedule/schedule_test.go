package schedule

import (
	"context"
	"reflect"
	"testing"

	"radiomis/internal/graph"
	"radiomis/internal/rng"
)

// propertyGraphs spans the generator families the acceptance criteria name
// (G(n,p), preferential attachment, grid) plus degenerate shapes.
func propertyGraphs(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	gs := map[string]*graph.Graph{
		"empty":    graph.New(0),
		"edgeless": graph.New(9),
		"complete": graph.Complete(12),
		"grid":     graph.Grid2D(8, 11),
	}
	for _, seed := range []int64{1, 2, 3} {
		gs["gnp-"+string(rune('a'+seed-1))] = graph.GNP(140, 8.0/140, rng.New(uint64(seed)))
		gs["pa-"+string(rune('a'+seed-1))] = graph.PreferentialAttachment(140, 4, rng.New(uint64(10+seed)))
	}
	return gs
}

// TestBatchesInvariants is the property test of the acceptance criteria:
// on every generator family and several seeds, the plan partitions the
// vertices, every batch is independent, and the peeling is maximal —
// all three checked by Plan.Validate, whose own failure modes are
// covered by TestValidateRejects.
func TestBatchesInvariants(t *testing.T) {
	for name, g := range propertyGraphs(t) {
		for _, seed := range []uint64{0, 1, 42} {
			plan, err := Batches(g, Options{Seed: seed})
			if err != nil {
				t.Fatalf("%s seed %d: %v", name, seed, err)
			}
			if err := plan.Validate(g); err != nil {
				t.Errorf("%s seed %d: %v", name, seed, err)
			}
		}
	}
}

// TestBatchesRadioAlgorithm runs the same invariants through a
// radio-simulated per-layer algorithm.
func TestBatchesRadioAlgorithm(t *testing.T) {
	if testing.Short() {
		t.Skip("radio layers simulate full runs")
	}
	for _, fam := range []string{"gnp", "grid", "prefattach"} {
		f, err := graph.ParseFamily(fam)
		if err != nil {
			t.Fatal(err)
		}
		g := graph.Generate(f, 96, rng.New(5))
		plan, err := Batches(g, Options{Algorithm: "cd", Seed: 3})
		if err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		if err := plan.Validate(g); err != nil {
			t.Errorf("%s: %v", fam, err)
		}
	}
}

func TestBatchesDeterministic(t *testing.T) {
	g := graph.GNP(120, 0.06, rng.New(9))
	a, err := Batches(g, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Batches(g, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Batches(), b.Batches()) {
		t.Error("same seed produced different plans")
	}
}

func TestPlannerReuseMatchesOneShot(t *testing.T) {
	// One warm planner cycling over several graphs must produce exactly
	// the plans fresh planners produce.
	pl := NewPlanner()
	defer pl.Close()
	graphs := []*graph.Graph{
		graph.GNP(90, 0.07, rng.New(2)),
		graph.Cycle(7),
		graph.Grid2D(9, 5),
		graph.GNP(90, 0.07, rng.New(3)),
	}
	for round := 0; round < 3; round++ {
		for i, g := range graphs {
			warm, err := pl.Batches(g, Options{Seed: uint64(i)})
			if err != nil {
				t.Fatal(err)
			}
			want, err := Batches(g, Options{Seed: uint64(i)})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(warm.Batches(), want.Batches()) {
				t.Fatalf("round %d graph %d: warm planner diverged from one-shot", round, i)
			}
		}
	}
}

func TestPlannerStats(t *testing.T) {
	g := graph.Complete(6) // K6 peels into 6 singleton batches
	plan, err := Batches(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := plan.Stats()
	want := Stats{Batches: 6, MaxBatch: 1, MeanBatch: 1, Vertices: 6}
	if s != want {
		t.Errorf("Stats = %+v, want %+v", s, want)
	}

	e := graph.New(5) // edgeless: one batch of everything
	plan, err = Batches(e, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s := plan.Stats(); s.Batches != 1 || s.MaxBatch != 5 {
		t.Errorf("edgeless Stats = %+v, want 1 batch of 5", s)
	}
}

func TestBatchesUnknownAlgorithm(t *testing.T) {
	if _, err := Batches(graph.Cycle(4), Options{Algorithm: "quantum"}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestBatchesCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Batches(graph.Cycle(12), Options{Ctx: ctx}); err == nil {
		t.Fatal("canceled context not honored")
	}
}

// TestValidateRejects feeds Validate hand-built broken plans so the
// property tests above can rely on it catching each invariant violation.
func TestValidateRejects(t *testing.T) {
	g := graph.Path(4) // 0-1-2-3
	mk := func(batches ...[]int32) *Plan {
		p := &Plan{}
		p.reset(g.N())
		for _, b := range batches {
			p.appendBatch(b)
		}
		return p
	}
	cases := map[string]*Plan{
		"missing vertex":   mk([]int32{0, 2}, []int32{1}),
		"duplicate vertex": mk([]int32{0, 2}, []int32{1, 3, 0}),
		"edge in batch":    mk([]int32{0, 1, 3}, []int32{2}),
		"non-maximal peel": mk([]int32{0}, []int32{2}, []int32{1, 3}), // batch 0 missed 2 and 3
		"out of range":     mk([]int32{0, 2}, []int32{1, 9}),
	}
	for name, plan := range cases {
		if err := plan.Validate(g); err == nil {
			t.Errorf("%s: Validate accepted a broken plan", name)
		}
	}
	good := mk([]int32{0, 2}, []int32{1, 3})
	if err := good.Validate(g); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
}

// TestBatchesZeroAllocSteadyState pins the serving contract outside the
// benchmark suite so plain `go test` catches regressions too.
func TestBatchesZeroAllocSteadyState(t *testing.T) {
	g := graph.GNP(256, 8.0/256, rng.New(1))
	pl := NewPlanner()
	defer pl.Close()
	opts := Options{Seed: 4}
	if _, err := pl.Batches(g, opts); err != nil { // warm-up
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := pl.Batches(g, opts); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("warm planner allocates %.1f allocs/op, want 0", allocs)
	}
}
