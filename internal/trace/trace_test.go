package trace

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestStartParentLinks(t *testing.T) {
	tr := NewSeeded(16, 1)
	ctx := WithTracer(context.Background(), tr)

	ctx, root := Start(ctx, "root")
	if root == nil {
		t.Fatal("Start with tracer returned nil span")
	}
	if root.Trace.IsZero() || root.ID.IsZero() {
		t.Fatalf("root span has zero IDs: %+v", root)
	}
	if !root.Parent.IsZero() {
		t.Fatalf("root span has a parent: %v", root.Parent)
	}

	_, child := Start(ctx, "child")
	if child.Trace != root.Trace {
		t.Fatalf("child trace %v != root trace %v", child.Trace, root.Trace)
	}
	if child.Parent != root.ID {
		t.Fatalf("child parent %v != root span %v", child.Parent, root.ID)
	}

	child.End()
	root.End()
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d retained spans, want 2", len(spans))
	}
	if spans[0] != child || spans[1] != root {
		t.Fatalf("spans not in end order: %q, %q", spans[0].Name, spans[1].Name)
	}
}

func TestStartWithoutTracerIsNoop(t *testing.T) {
	ctx := context.Background()
	ctx2, sp := Start(ctx, "orphan")
	if sp != nil {
		t.Fatalf("Start without tracer returned span %+v", sp)
	}
	if ctx2 != ctx {
		t.Fatal("Start without tracer replaced the context")
	}
	// All nil-span methods are no-ops.
	sp.SetAttr("k", "v")
	sp.AddEvent("e")
	sp.End()
	sp.EndAt(time.Now())
	if sc := sp.Context(); !sc.IsZero() {
		t.Fatalf("nil span context = %+v, want zero", sc)
	}
	if sp.Recording() {
		t.Fatal("nil span reports Recording")
	}
	if d := sp.Duration(); d != 0 {
		t.Fatalf("nil span duration = %v", d)
	}
}

func TestEndIsIdempotentAndFreezes(t *testing.T) {
	tr := NewSeeded(16, 2)
	sp := tr.StartSpan(SpanContext{}, "x", time.Now())
	sp.SetAttr("before", 1)
	sp.End()
	end := sp.EndTime
	sp.SetAttr("after", 2)
	sp.AddEvent("after")
	sp.End()
	if sp.EndTime != end {
		t.Fatal("second End moved EndTime")
	}
	if len(sp.Attrs) != 1 || len(sp.Events) != 0 {
		t.Fatalf("post-End mutation stuck: attrs=%v events=%v", sp.Attrs, sp.Events)
	}
	if got := tr.Ended(); got != 1 {
		t.Fatalf("Ended = %d, want 1 (double End must publish once)", got)
	}
}

func TestRingEvictsOldest(t *testing.T) {
	tr := NewSeeded(4, 3)
	for i := 0; i < 10; i++ {
		sp := tr.StartSpan(SpanContext{}, "s", time.Now(), A("i", i))
		sp.End()
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("retained %d spans, want ring capacity 4", len(spans))
	}
	for k, sp := range spans {
		if want := 6 + k; sp.Attrs[0].Value.(int) != want {
			t.Fatalf("slot %d holds span %v, want %d (oldest-first)", k, sp.Attrs[0].Value, want)
		}
	}
	if tr.Ended() != 10 {
		t.Fatalf("Ended = %d, want 10", tr.Ended())
	}
}

func TestConcurrentSpansRace(t *testing.T) {
	tr := New(64)
	ctx := WithTracer(context.Background(), tr)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_, sp := Start(ctx, "w", A("g", g), A("i", i))
				sp.AddEvent("tick")
				sp.End()
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			for _, sp := range tr.Spans() {
				_ = sp.Duration()
				_ = sp.Name
			}
		}
	}()
	wg.Wait()
	<-done
	if tr.Ended() != 800 {
		t.Fatalf("Ended = %d, want 800", tr.Ended())
	}
}

func TestDeterministicIDs(t *testing.T) {
	a, b := NewSeeded(4, 42), NewSeeded(4, 42)
	sa := a.StartSpan(SpanContext{}, "x", time.Time{})
	sb := b.StartSpan(SpanContext{}, "x", time.Time{})
	if sa.Trace != sb.Trace || sa.ID != sb.ID {
		t.Fatalf("equal seeds diverged: %v/%v vs %v/%v", sa.Trace, sa.ID, sb.Trace, sb.ID)
	}
	c := NewSeeded(4, 43)
	if sc := c.StartSpan(SpanContext{}, "x", time.Time{}); sc.Trace == sa.Trace {
		t.Fatal("different seeds produced the same trace ID")
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	tr := NewSeeded(4, 7)
	sp := tr.StartSpan(SpanContext{}, "x", time.Now())
	h := sp.Context().Traceparent()
	if len(h) != 55 || !strings.HasPrefix(h, "00-") || !strings.HasSuffix(h, "-01") {
		t.Fatalf("malformed traceparent %q", h)
	}
	sc, ok := ParseTraceparent(h)
	if !ok {
		t.Fatalf("ParseTraceparent rejected own output %q", h)
	}
	if sc != sp.Context() {
		t.Fatalf("round trip changed context: %+v != %+v", sc, sp.Context())
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	bad := []string{
		"",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",          // missing flags
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra", // version 00 with extra field
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",       // reserved version
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",       // zero trace
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",       // zero span
		"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01",       // uppercase
		"00_4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",       // bad separator
		"zz-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",       // bad version
	}
	for _, h := range bad {
		if _, ok := ParseTraceparent(h); ok {
			t.Errorf("ParseTraceparent accepted %q", h)
		}
	}
	// A future version may carry extra fields.
	if _, ok := ParseTraceparent("01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-what"); !ok {
		t.Error("ParseTraceparent rejected a valid future-version header")
	}
}

func TestEmit(t *testing.T) {
	tr := NewSeeded(8, 9)
	start := time.Unix(100, 0)
	end := start.Add(250 * time.Millisecond)
	parent := tr.StartSpan(SpanContext{}, "root", start)
	sc := tr.Emit(parent.Context(), "queued", start, end, A("jobId", "j000001"))
	if sc.Trace != parent.Trace {
		t.Fatal("Emit did not inherit the parent's trace")
	}
	spans := tr.Spans()
	if len(spans) != 1 {
		t.Fatalf("retained %d spans, want 1 (parent is still live)", len(spans))
	}
	sp := spans[0]
	if sp.Name != "queued" || sp.Duration() != 250*time.Millisecond || sp.Parent != parent.ID {
		t.Fatalf("emitted span wrong: %+v", sp)
	}
}
