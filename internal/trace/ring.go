package trace

import "sync/atomic"

// ring is a lock-free bounded buffer of finished spans: writers claim a
// monotonically increasing slot index with one atomic add and publish the
// span with one atomic pointer store, so End never blocks and never
// allocates beyond the span itself. Once the ring wraps, the newest span
// overwrites the oldest — /debug/traces is a recent-history window, not
// an archive.
//
// snapshot is best-effort under concurrent writes: a writer that has
// claimed a slot but not yet stored into it leaves the slot's previous
// occupant visible, so a snapshot taken mid-write may briefly contain a
// span older than its neighbors. That is acceptable for a diagnostics
// surface and keeps the write path wait-free.
type ring struct {
	slots []atomic.Pointer[Span]
	next  atomic.Uint64
}

func newRing(capacity int) ring {
	return ring{slots: make([]atomic.Pointer[Span], capacity)}
}

// add publishes a finished span, evicting the oldest when full.
func (r *ring) add(s *Span) {
	i := r.next.Add(1) - 1
	r.slots[i%uint64(len(r.slots))].Store(s)
}

// added returns the total number of spans ever published.
func (r *ring) added() uint64 { return r.next.Load() }

// snapshot returns the retained spans, oldest first.
func (r *ring) snapshot() []*Span {
	n := r.next.Load()
	cap64 := uint64(len(r.slots))
	start := uint64(0)
	if n > cap64 {
		start = n - cap64
	}
	out := make([]*Span, 0, n-start)
	for i := start; i < n; i++ {
		if sp := r.slots[i%cap64].Load(); sp != nil {
			out = append(out, sp)
		}
	}
	return out
}
