package trace

import "encoding/hex"

// W3C Trace Context propagation (https://www.w3.org/TR/trace-context/):
// the `traceparent` HTTP header carries a SpanContext across process
// boundaries as
//
//	version "-" trace-id "-" parent-id "-" trace-flags
//	   00   - 32 lowercase hex - 16 lowercase hex -  2 hex
//
// radiomisd extracts an inbound header so a coordinator's trace ID
// becomes the root of the daemon-side span tree, and injects the header
// on responses (and, in cluster mode, on fan-out requests to workers).

// TraceparentHeader is the canonical header name.
const TraceparentHeader = "traceparent"

// Traceparent renders the version-00 header with the sampled flag set.
// The zero SpanContext renders as an all-zero (invalid) header; callers
// should not send it.
func (sc SpanContext) Traceparent() string {
	buf := make([]byte, 0, 55)
	buf = append(buf, "00-"...)
	buf = hex.AppendEncode(buf, sc.Trace[:])
	buf = append(buf, '-')
	buf = hex.AppendEncode(buf, sc.Span[:])
	buf = append(buf, "-01"...)
	return string(buf)
}

// ParseTraceparent parses a traceparent header value. It accepts any
// version except the reserved "ff", requires the four version-00 fields
// (tolerating extra future-version fields after them), and rejects the
// invalid all-zero trace and span IDs, per the W3C processing rules.
func ParseTraceparent(h string) (SpanContext, bool) {
	// version(2) - trace(32) - span(16) - flags(2), possibly followed by
	// "-extra" in future versions.
	if len(h) < 55 {
		return SpanContext{}, false
	}
	if h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return SpanContext{}, false
	}
	version := h[0:2]
	if !isHex(version) || version == "ff" {
		return SpanContext{}, false
	}
	if version == "00" && len(h) != 55 {
		return SpanContext{}, false
	}
	if len(h) > 55 && h[55] != '-' {
		return SpanContext{}, false
	}
	// hex.Decode tolerates uppercase; the spec does not.
	if !isHex(h[3:35]) || !isHex(h[36:52]) || !isHex(h[53:55]) {
		return SpanContext{}, false
	}
	var sc SpanContext
	hex.Decode(sc.Trace[:], []byte(h[3:35]))
	hex.Decode(sc.Span[:], []byte(h[36:52]))
	if sc.Trace.IsZero() || sc.Span.IsZero() {
		return SpanContext{}, false
	}
	return sc, true
}

// ParseTraceID parses a 32-digit lowercase hex trace ID (the form
// TraceID.String produces and /debug/traces exports carry), rejecting the
// invalid all-zero ID.
func ParseTraceID(s string) (TraceID, bool) {
	var id TraceID
	if len(s) != 32 || !isHex(s) {
		return TraceID{}, false
	}
	hex.Decode(id[:], []byte(s))
	if id.IsZero() {
		return TraceID{}, false
	}
	return id, true
}

// ParseSpanID parses a 16-digit lowercase hex span ID, rejecting the
// invalid all-zero ID.
func ParseSpanID(s string) (SpanID, bool) {
	var id SpanID
	if len(s) != 16 || !isHex(s) {
		return SpanID{}, false
	}
	hex.Decode(id[:], []byte(s))
	if id.IsZero() {
		return SpanID{}, false
	}
	return id, true
}

// isHex reports whether s is entirely lowercase hex digits, as the spec
// requires (uppercase headers are invalid and must be ignored).
func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
