// Package trace is the repo's distributed-tracing substrate: a
// zero-dependency span tracer with W3C traceparent propagation and
// exporters for the Chrome trace-event and OTLP JSON formats.
//
// It completes the observability triad (docs/observability.md): the
// observer layer answers *what the simulated algorithm did*, the
// telemetry layer answers *where wall-clock time went in aggregate*, and
// this package answers *causal* questions — which HTTP request caused
// which job, how long that job sat queued, which of its trials straggled,
// and where inside a trial the engine's rounds fell on the wall clock.
//
// The design mirrors internal/telemetry: a Tracer travels by context
// (WithTracer / FromContext), instrumented code is silent and
// allocation-free when no tracer is attached, and nothing recorded here
// may influence a simulation result. Spans form trees: every span carries
// a 128-bit TraceID shared by its whole tree and a 64-bit SpanID of its
// own; the parent link is a SpanID within the same trace. A SpanContext
// (TraceID, SpanID) is the wire-portable reference that crosses process
// boundaries as a W3C traceparent header — the hook radiomisd cluster
// mode needs to reassemble a fanned-out sweep into one timeline.
//
// Finished spans land in a lock-free bounded ring (newest wins) that
// backs the daemon's /debug/traces endpoint and the exporters. All Tracer
// and Span operations are safe for concurrent use, with one caveat
// shared with OpenTelemetry: a single span's SetAttr/AddEvent/End must
// not race each other from multiple goroutines.
package trace

import (
	"context"
	"encoding/hex"
	"sync/atomic"
	"time"
)

// TraceID identifies one causal tree of spans (128 bits, hex on the wire).
type TraceID [16]byte

// IsZero reports whether the ID is the invalid all-zero ID.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String returns the 32-digit lowercase hex encoding.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// SpanID identifies one span within a trace (64 bits, hex on the wire).
type SpanID [8]byte

// IsZero reports whether the ID is the invalid all-zero ID.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String returns the 16-digit lowercase hex encoding.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// SpanContext is the propagatable reference to a span: enough to parent
// children to it, locally or across a process boundary (see Traceparent).
type SpanContext struct {
	Trace TraceID
	Span  SpanID
}

// IsZero reports whether the context references no span.
func (sc SpanContext) IsZero() bool { return sc.Trace.IsZero() }

// Attr is one key/value annotation on a span or event. Values should be
// JSON-encodable scalars (string, bool, integers, float64).
type Attr struct {
	Key   string
	Value any
}

// A constructs an Attr.
func A(key string, value any) Attr { return Attr{Key: key, Value: value} }

// Event is a point-in-time annotation within a span.
type Event struct {
	Name  string
	Time  time.Time
	Attrs []Attr
}

// Span is one named, timed operation. Fields are written by the tracer
// and the owning goroutine; they must be treated as read-only once the
// span has ended (End publishes the span to the tracer's ring, after
// which concurrent readers may hold it).
type Span struct {
	Name      string
	Trace     TraceID
	ID        SpanID
	Parent    SpanID // zero for a root span
	StartTime time.Time
	EndTime   time.Time
	Attrs     []Attr
	Events    []Event

	tracer *Tracer
	ended  atomic.Bool
}

// Context returns the span's propagatable reference. A nil span returns
// the zero SpanContext.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{Trace: s.Trace, Span: s.ID}
}

// Recording reports whether the span is live (non-nil and not ended) —
// instrumentation can gate expensive attribute computation on it.
func (s *Span) Recording() bool { return s != nil && !s.ended.Load() }

// SetAttr annotates the span. No-op on a nil or ended span.
func (s *Span) SetAttr(key string, value any) {
	if !s.Recording() {
		return
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Value: value})
}

// AddEvent records a point-in-time event on the span. No-op on a nil or
// ended span.
func (s *Span) AddEvent(name string, attrs ...Attr) {
	if !s.Recording() {
		return
	}
	s.Events = append(s.Events, Event{Name: name, Time: time.Now(), Attrs: attrs})
}

// End finishes the span now and publishes it to the tracer's ring.
// Safe on a nil span; ending twice is a no-op.
func (s *Span) End() { s.EndAt(time.Now()) }

// EndAt is End with an explicit end time (for spans reconstructed after
// the fact, e.g. a queue wait measured between two recorded instants).
func (s *Span) EndAt(t time.Time) {
	if s == nil || !s.ended.CompareAndSwap(false, true) {
		return
	}
	s.EndTime = t
	if s.tracer != nil {
		s.tracer.ring.add(s)
	}
}

// Duration returns EndTime − StartTime (0 for a nil or unfinished span).
func (s *Span) Duration() time.Duration {
	if s == nil || s.EndTime.IsZero() {
		return 0
	}
	return s.EndTime.Sub(s.StartTime)
}

// Tracer creates spans and retains the most recent finished ones in a
// bounded ring. All methods are safe for concurrent use.
type Tracer struct {
	ring    ring
	idState atomic.Uint64
}

// DefaultCapacity is the span-ring size used when New is given a
// non-positive capacity.
const DefaultCapacity = 4096

// New returns a tracer retaining the last capacity finished spans
// (DefaultCapacity when capacity ≤ 0), with randomized span identifiers.
func New(capacity int) *Tracer {
	return NewSeeded(capacity, uint64(time.Now().UnixNano())^seedSalt)
}

// NewSeeded is New with a deterministic identifier stream — equal seeds
// yield equal TraceID/SpanID sequences, which keeps tests reproducible.
func NewSeeded(capacity int, seed uint64) *Tracer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	t := &Tracer{ring: newRing(capacity)}
	t.idState.Store(seed)
	return t
}

// seedSalt decorrelates tracers created in the same nanosecond.
const seedSalt = 0x9e3779b97f4a7c15

// nextID draws the next 64-bit identifier from a splitmix64 stream over
// an atomic counter — lock-free, allocation-free, never zero.
func (t *Tracer) nextID() uint64 {
	for {
		x := t.idState.Add(0x9e3779b97f4a7c15)
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
		if x != 0 {
			return x
		}
	}
}

func (t *Tracer) newTraceID() TraceID {
	var id TraceID
	hi, lo := t.nextID(), t.nextID()
	for i := 0; i < 8; i++ {
		id[i] = byte(hi >> (56 - 8*i))
		id[8+i] = byte(lo >> (56 - 8*i))
	}
	return id
}

func (t *Tracer) newSpanID() SpanID {
	var id SpanID
	x := t.nextID()
	for i := 0; i < 8; i++ {
		id[i] = byte(x >> (56 - 8*i))
	}
	return id
}

// StartSpan creates a live span under parent (a zero parent starts a new
// trace) beginning at start. Callers must End it.
func (t *Tracer) StartSpan(parent SpanContext, name string, start time.Time, attrs ...Attr) *Span {
	sp := &Span{Name: name, StartTime: start, tracer: t}
	if parent.IsZero() {
		sp.Trace = t.newTraceID()
	} else {
		sp.Trace = parent.Trace
		sp.Parent = parent.Span
	}
	sp.ID = t.newSpanID()
	if len(attrs) > 0 {
		sp.Attrs = append(sp.Attrs, attrs...)
	}
	return sp
}

// Start begins a child of ctx's current span (or a new root) and returns
// ctx with the new span installed, so further Start calls nest under it.
func (t *Tracer) Start(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	sp := t.StartSpan(SpanFromContext(ctx).Context(), name, time.Now(), attrs...)
	return ContextWithSpan(ctx, sp), sp
}

// Emit records an already-finished span — the shape for operations whose
// bounds were measured before tracing got involved (a queue wait between
// two recorded timestamps, an engine round slice). It returns the new
// span's context so children can still be parented to it.
func (t *Tracer) Emit(parent SpanContext, name string, start, end time.Time, attrs ...Attr) SpanContext {
	sp := t.StartSpan(parent, name, start, attrs...)
	sp.EndAt(end)
	return sp.Context()
}

// ImportSpan publishes an already-finished span reconstructed from
// another process's export into this tracer's ring — the receiving half
// of cluster trace stitching, where a coordinator pulls a worker's
// /debug/traces and grafts the remote spans into its own tree. The span
// must carry its remote identity (Trace, ID, and usually Parent) and a
// non-zero EndTime; it reports whether the span was accepted. Callers are
// responsible for de-duplicating re-imports (the ring itself never is —
// it retains whatever it is given).
func (t *Tracer) ImportSpan(sp *Span) bool {
	if sp == nil || sp.Trace.IsZero() || sp.ID.IsZero() || sp.EndTime.IsZero() {
		return false
	}
	if !sp.ended.CompareAndSwap(false, true) {
		return false
	}
	sp.tracer = t
	t.ring.add(sp)
	return true
}

// Spans returns the finished spans currently retained, oldest first. The
// snapshot is best-effort under concurrent writes: a span racing into the
// ring may be missed until the next call.
func (t *Tracer) Spans() []*Span { return t.ring.snapshot() }

// Ended returns the total number of spans finished on this tracer,
// including ones the bounded ring has already evicted.
func (t *Tracer) Ended() uint64 { return t.ring.added() }

// Capacity returns the ring's span capacity.
func (t *Tracer) Capacity() int { return len(t.ring.slots) }

type tracerKey struct{}
type spanKey struct{}

// WithTracer returns a context carrying tr. Instrumented layers resolve
// it with FromContext and stay silent — and allocation-free — when none
// is attached, exactly like telemetry.WithRegistry.
func WithTracer(ctx context.Context, tr *Tracer) context.Context {
	return context.WithValue(ctx, tracerKey{}, tr)
}

// FromContext extracts the tracer installed by WithTracer, or nil.
func FromContext(ctx context.Context) *Tracer {
	if ctx == nil {
		return nil
	}
	tr, _ := ctx.Value(tracerKey{}).(*Tracer)
	return tr
}

// ContextWithSpan returns a context carrying sp as the current span.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	return context.WithValue(ctx, spanKey{}, sp)
}

// SpanFromContext extracts the current span, or nil.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}

// Start begins a span on ctx's tracer, nested under ctx's current span.
// Without a tracer it returns ctx unchanged and a nil span, whose methods
// are all no-ops — instrumentation sites need no conditionals:
//
//	ctx, sp := trace.Start(ctx, "harness.trial")
//	defer sp.End()
func Start(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	tr := FromContext(ctx)
	if tr == nil {
		return ctx, nil
	}
	return tr.Start(ctx, name, attrs...)
}
