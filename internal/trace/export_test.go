package trace

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// exportFixture builds a two-span trace with attrs and an event.
func exportFixture() (*Tracer, []*Span) {
	tr := NewSeeded(8, 11)
	base := time.Unix(1000, 0)
	root := tr.StartSpan(SpanContext{}, "http POST /v1/jobs", base, A("method", "POST"))
	child := tr.StartSpan(root.Context(), "job.run", base.Add(time.Millisecond), A("jobId", "j000001"), A("trials", 4))
	child.Events = append(child.Events, Event{Name: "cache.miss", Time: base.Add(2 * time.Millisecond)})
	child.EndAt(base.Add(90 * time.Millisecond))
	root.EndAt(base.Add(100 * time.Millisecond))
	return tr, tr.Spans()
}

func TestWriteChrome(t *testing.T) {
	_, spans := exportFixture()
	var buf bytes.Buffer
	if err := WriteChrome(&buf, spans); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("chrome output is not a JSON array: %v\n%s", err, buf.String())
	}
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}
	byName := map[string]map[string]any{}
	for _, ev := range events {
		byName[ev["name"].(string)] = ev
		if ev["ph"] != "X" {
			t.Fatalf("event %v has phase %v, want X", ev["name"], ev["ph"])
		}
		if int(ev["pid"].(float64)) != WallPid {
			t.Fatalf("event %v on pid %v, want %d", ev["name"], ev["pid"], WallPid)
		}
	}
	child := byName["job.run"]
	if child == nil {
		t.Fatalf("missing job.run event in %v", byName)
	}
	// child starts 1ms after the epoch (= root start), lasts 89ms.
	if ts := int64(child["ts"].(float64)); ts != 1000 {
		t.Fatalf("child ts = %d µs, want 1000", ts)
	}
	if dur := int64(child["dur"].(float64)); dur != 89000 {
		t.Fatalf("child dur = %d µs, want 89000", dur)
	}
	args := child["args"].(map[string]any)
	if args["jobId"] != "j000001" || args["parentSpanId"] == nil || args["traceId"] == nil {
		t.Fatalf("child args missing fields: %v", args)
	}
	// Same trace → same tid lane.
	if byName["http POST /v1/jobs"]["tid"] != child["tid"] {
		t.Fatal("spans of one trace landed on different tids")
	}
}

func TestWriteOTLP(t *testing.T) {
	_, spans := exportFixture()
	var buf bytes.Buffer
	if err := WriteOTLP(&buf, "radiomisd", spans); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		ResourceSpans []struct {
			Resource struct {
				Attributes []struct {
					Key   string `json:"key"`
					Value struct {
						StringValue string `json:"stringValue"`
					} `json:"value"`
				} `json:"attributes"`
			} `json:"resource"`
			ScopeSpans []struct {
				Spans []struct {
					TraceID           string `json:"traceId"`
					SpanID            string `json:"spanId"`
					ParentSpanID      string `json:"parentSpanId"`
					Name              string `json:"name"`
					Kind              int    `json:"kind"`
					StartTimeUnixNano string `json:"startTimeUnixNano"`
					EndTimeUnixNano   string `json:"endTimeUnixNano"`
					Events            []struct {
						Name string `json:"name"`
					} `json:"events"`
				} `json:"spans"`
			} `json:"scopeSpans"`
		} `json:"resourceSpans"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("OTLP output malformed: %v\n%s", err, buf.String())
	}
	if len(doc.ResourceSpans) != 1 || len(doc.ResourceSpans[0].ScopeSpans) != 1 {
		t.Fatalf("unexpected document shape: %s", buf.String())
	}
	if got := doc.ResourceSpans[0].Resource.Attributes[0]; got.Key != "service.name" || got.Value.StringValue != "radiomisd" {
		t.Fatalf("service.name attribute wrong: %+v", got)
	}
	ss := doc.ResourceSpans[0].ScopeSpans[0].Spans
	if len(ss) != 2 {
		t.Fatalf("got %d spans, want 2", len(ss))
	}
	child := ss[0] // ring order: child ended first
	if child.Name != "job.run" || len(child.TraceID) != 32 || len(child.SpanID) != 16 || len(child.ParentSpanID) != 16 {
		t.Fatalf("child span wrong: %+v", child)
	}
	if child.Kind != 1 || child.StartTimeUnixNano == "" || child.EndTimeUnixNano == "" {
		t.Fatalf("child span missing OTLP fields: %+v", child)
	}
	if len(child.Events) != 1 || child.Events[0].Name != "cache.miss" {
		t.Fatalf("child events wrong: %+v", child.Events)
	}
	root := ss[1]
	if root.ParentSpanID != "" {
		t.Fatalf("root has parent %q", root.ParentSpanID)
	}
	if root.TraceID != child.TraceID {
		t.Fatal("spans of one trace exported with different trace IDs")
	}
}
