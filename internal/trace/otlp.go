package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// OTLP-shaped JSON export: the structure of an OTLP/HTTP
// ExportTraceServiceRequest body (resourceSpans → scopeSpans → spans)
// with the JSON field conventions of the OTLP spec — hex IDs, unix-nano
// timestamps as decimal strings, and {stringValue,intValue,...}-tagged
// attribute values. Files written here load into any OTLP-JSON-aware
// backend or can be replayed against a collector; the repo itself stays
// dependency-free.

type otlpValue struct {
	StringValue *string  `json:"stringValue,omitempty"`
	BoolValue   *bool    `json:"boolValue,omitempty"`
	IntValue    *string  `json:"intValue,omitempty"` // decimal string, per OTLP JSON
	DoubleValue *float64 `json:"doubleValue,omitempty"`
}

type otlpKeyValue struct {
	Key   string    `json:"key"`
	Value otlpValue `json:"value"`
}

type otlpEvent struct {
	TimeUnixNano string         `json:"timeUnixNano"`
	Name         string         `json:"name"`
	Attributes   []otlpKeyValue `json:"attributes,omitempty"`
}

type otlpSpan struct {
	TraceID           string         `json:"traceId"`
	SpanID            string         `json:"spanId"`
	ParentSpanID      string         `json:"parentSpanId,omitempty"`
	Name              string         `json:"name"`
	Kind              int            `json:"kind"` // 1 = SPAN_KIND_INTERNAL
	StartTimeUnixNano string         `json:"startTimeUnixNano"`
	EndTimeUnixNano   string         `json:"endTimeUnixNano"`
	Attributes        []otlpKeyValue `json:"attributes,omitempty"`
	Events            []otlpEvent    `json:"events,omitempty"`
}

type otlpScopeSpans struct {
	Scope struct {
		Name string `json:"name"`
	} `json:"scope"`
	Spans []otlpSpan `json:"spans"`
}

type otlpResourceSpans struct {
	Resource struct {
		Attributes []otlpKeyValue `json:"attributes"`
	} `json:"resource"`
	ScopeSpans []otlpScopeSpans `json:"scopeSpans"`
}

type otlpExport struct {
	ResourceSpans []otlpResourceSpans `json:"resourceSpans"`
}

// otlpAttrValue maps a span attribute to the OTLP tagged-value encoding.
func otlpAttrValue(v any) otlpValue {
	switch x := v.(type) {
	case string:
		return otlpValue{StringValue: &x}
	case bool:
		return otlpValue{BoolValue: &x}
	case int:
		s := strconv.FormatInt(int64(x), 10)
		return otlpValue{IntValue: &s}
	case int64:
		s := strconv.FormatInt(x, 10)
		return otlpValue{IntValue: &s}
	case uint64:
		s := strconv.FormatUint(x, 10)
		return otlpValue{IntValue: &s}
	case float64:
		return otlpValue{DoubleValue: &x}
	default:
		s := fmt.Sprint(x)
		return otlpValue{StringValue: &s}
	}
}

func otlpAttrs(attrs []Attr) []otlpKeyValue {
	if len(attrs) == 0 {
		return nil
	}
	out := make([]otlpKeyValue, 0, len(attrs))
	for _, a := range attrs {
		out = append(out, otlpKeyValue{Key: a.Key, Value: otlpAttrValue(a.Value)})
	}
	return out
}

// WriteOTLP writes the spans as one OTLP-shaped JSON document attributed
// to the named service.
func WriteOTLP(w io.Writer, serviceName string, spans []*Span) error {
	out := make([]otlpSpan, 0, len(spans))
	for _, sp := range spans {
		os := otlpSpan{
			TraceID:           sp.Trace.String(),
			SpanID:            sp.ID.String(),
			Name:              sp.Name,
			Kind:              1,
			StartTimeUnixNano: strconv.FormatInt(sp.StartTime.UnixNano(), 10),
			EndTimeUnixNano:   strconv.FormatInt(sp.EndTime.UnixNano(), 10),
			Attributes:        otlpAttrs(sp.Attrs),
		}
		if !sp.Parent.IsZero() {
			os.ParentSpanID = sp.Parent.String()
		}
		for _, ev := range sp.Events {
			os.Events = append(os.Events, otlpEvent{
				TimeUnixNano: strconv.FormatInt(ev.Time.UnixNano(), 10),
				Name:         ev.Name,
				Attributes:   otlpAttrs(ev.Attrs),
			})
		}
		out = append(out, os)
	}

	var doc otlpExport
	var rs otlpResourceSpans
	rs.Resource.Attributes = []otlpKeyValue{{Key: "service.name", Value: otlpAttrValue(serviceName)}}
	var ss otlpScopeSpans
	ss.Scope.Name = "radiomis/internal/trace"
	ss.Spans = out
	rs.ScopeSpans = []otlpScopeSpans{ss}
	doc.ResourceSpans = []otlpResourceSpans{rs}

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
