package trace

import (
	"bufio"
	"encoding/json"
	"io"
	"time"
)

// Chrome trace-event export (the JSON-array flavor understood by
// chrome://tracing and https://ui.perfetto.dev). Spans become "X"
// (complete) events with microsecond timestamps relative to the earliest
// span start, one thread track (tid) per trace so concurrent traces
// stack as separate lanes.
//
// Wall-clock spans live on pid WallPid. The engine-side obs.ChromeTracer
// emits its per-round phase events on pid 0 with ts measured in *rounds*,
// so when the two streams are merged into one file (see
// obs.ChromeTracer.AppendSpans) the viewer shows them as two process
// groups on one timeline: simulated time above, wall time below.

// WallPid is the Chrome trace "process" wall-clock spans are emitted on,
// distinguishing them from the engine's simulated-rounds events (pid 0).
const WallPid = 1

// chromeSpanEvent mirrors the trace-event JSON schema (a local copy so
// the package stays dependency-free).
type chromeSpanEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	Ts    int64          `json:"ts"`
	Dur   int64          `json:"dur"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

// ChromeEpoch returns the reference instant span timestamps are measured
// from: the earliest start among the spans (zero time when empty).
func ChromeEpoch(spans []*Span) time.Time {
	var epoch time.Time
	for _, sp := range spans {
		if epoch.IsZero() || sp.StartTime.Before(epoch) {
			epoch = sp.StartTime
		}
	}
	return epoch
}

// chromeEvent converts one finished span, assigning tids per trace ID in
// first-seen order via tids.
func chromeEvent(sp *Span, epoch time.Time, tids map[TraceID]int) *chromeSpanEvent {
	tid, ok := tids[sp.Trace]
	if !ok {
		tid = len(tids) + 1
		tids[sp.Trace] = tid
	}
	args := map[string]any{
		"traceId": sp.Trace.String(),
		"spanId":  sp.ID.String(),
	}
	if !sp.Parent.IsZero() {
		args["parentSpanId"] = sp.Parent.String()
	}
	for _, a := range sp.Attrs {
		args[a.Key] = a.Value
	}
	dur := sp.Duration().Microseconds()
	if dur < 1 {
		dur = 1 // zero-width events vanish in the viewer
	}
	return &chromeSpanEvent{
		Name:  sp.Name,
		Phase: "X",
		Ts:    sp.StartTime.Sub(epoch).Microseconds(),
		Dur:   dur,
		Pid:   WallPid,
		Tid:   tid,
		Args:  args,
	}
}

// ChromeEvents renders each span as one marshaled Chrome trace event,
// ready to splice into an existing trace-event array — the bridge
// obs.ChromeTracer.AppendSpans uses to merge wall-clock spans into an
// engine phase-event file.
func ChromeEvents(spans []*Span) ([]json.RawMessage, error) {
	epoch := ChromeEpoch(spans)
	tids := make(map[TraceID]int)
	out := make([]json.RawMessage, 0, len(spans))
	for _, sp := range spans {
		b, err := json.Marshal(chromeEvent(sp, epoch, tids))
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	return out, nil
}

// WriteChrome writes the spans as a self-contained Chrome trace-event
// JSON array.
func WriteChrome(w io.Writer, spans []*Span) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("["); err != nil {
		return err
	}
	epoch := ChromeEpoch(spans)
	tids := make(map[TraceID]int)
	for i, sp := range spans {
		ev := chromeEvent(sp, epoch, tids)
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		sep := "\n"
		if i > 0 {
			sep = ",\n"
		}
		if _, err := bw.WriteString(sep); err != nil {
			return err
		}
		if _, err := bw.Write(b); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("\n]\n"); err != nil {
		return err
	}
	return bw.Flush()
}
