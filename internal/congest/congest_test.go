package congest

import (
	"errors"
	"testing"

	"radiomis/internal/graph"
	"radiomis/internal/rng"
)

func TestStepDeliversToAllNeighbors(t *testing.T) {
	// Triangle: everyone broadcasts its ID+10; everyone must receive both
	// neighbors' messages (no collisions in CONGEST).
	g := graph.Complete(3)
	res, err := Run(g, Config{Seed: 1}, func(env *Env) int64 {
		msgs := env.Step(true, uint64(env.ID()+10))
		sum := int64(0)
		for _, m := range msgs {
			sum += int64(m.Payload)
		}
		return sum
	})
	if err != nil {
		t.Fatal(err)
	}
	// Node 0 receives 11+12=23, node 1 receives 10+12=22, node 2 → 21.
	want := []int64{23, 22, 21}
	for v, w := range want {
		if res.Outputs[v] != w {
			t.Errorf("node %d received sum %d, want %d", v, res.Outputs[v], w)
		}
	}
}

func TestSenderIdentityAndOrder(t *testing.T) {
	g := graph.Star(4) // center 0, leaves 1..3
	res, err := Run(g, Config{Seed: 1}, func(env *Env) int64 {
		if env.ID() == 0 {
			msgs := env.Step(false, 0)
			// Messages arrive sorted by sender.
			code := int64(0)
			for _, m := range msgs {
				code = code*10 + int64(m.From)
			}
			return code
		}
		env.Step(true, 1)
		return 0
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs[0] != 123 {
		t.Errorf("center sender order code = %d, want 123", res.Outputs[0])
	}
}

func TestSleepingNodesDoNotSendOrReceive(t *testing.T) {
	g := graph.Path(2)
	res, err := Run(g, Config{Seed: 1}, func(env *Env) int64 {
		if env.ID() == 0 {
			env.Sleep(1)               // asleep in round 0
			msgs := env.Step(false, 0) // round 1: neighbor already silent
			return int64(len(msgs))
		}
		env.Step(true, 7) // round 0: broadcast while neighbor sleeps
		env.Sleep(1)
		return 0
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs[0] != 0 {
		t.Errorf("sleeping node received %d messages sent while it slept", res.Outputs[0])
	}
}

func TestSendAndReceiveSameRound(t *testing.T) {
	// Unlike the radio model, CONGEST nodes send and receive in one round.
	g := graph.Path(2)
	res, err := Run(g, Config{Seed: 1}, func(env *Env) int64 {
		msgs := env.Step(true, uint64(env.ID()+1))
		if len(msgs) != 1 {
			return -1
		}
		return int64(msgs[0].Payload)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs[0] != 2 || res.Outputs[1] != 1 {
		t.Errorf("simultaneous exchange failed: %v", res.Outputs)
	}
}

func TestAwakeAccounting(t *testing.T) {
	g := graph.New(1)
	res, err := Run(g, Config{Seed: 1}, func(env *Env) int64 {
		env.Step(false, 0)
		env.Sleep(100)
		env.Step(true, 0)
		return 0
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Awake[0] != 2 {
		t.Errorf("awake = %d, want 2", res.Awake[0])
	}
	if res.Rounds != 102 {
		t.Errorf("rounds = %d, want 102", res.Rounds)
	}
}

func TestMaxRoundsAborts(t *testing.T) {
	g := graph.New(1)
	_, err := Run(g, Config{Seed: 1, MaxRounds: 10}, func(env *Env) int64 {
		for {
			env.Step(false, 0)
		}
	})
	if !errors.Is(err, ErrMaxRounds) {
		t.Fatalf("err = %v, want ErrMaxRounds", err)
	}
}

func TestEmptyGraph(t *testing.T) {
	res, err := Run(graph.New(0), Config{Seed: 1}, func(env *Env) int64 { return 0 })
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs) != 0 {
		t.Error("empty run not empty")
	}
}

func TestRunDeterministic(t *testing.T) {
	g := graph.GNP(50, 0.1, rng.New(2))
	run := func() *Result {
		res, err := Run(g, Config{Seed: 5}, func(env *Env) int64 {
			acc := int64(0)
			for i := 0; i < 5; i++ {
				for _, m := range env.Step(env.Rand64()&1 == 1, env.Rand64()) {
					acc = acc*31 + int64(m.Payload%1000)
				}
			}
			return acc
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	for v := range a.Outputs {
		if a.Outputs[v] != b.Outputs[v] {
			t.Fatalf("node %d diverged", v)
		}
	}
}

func TestResultAggregates(t *testing.T) {
	r := &Result{Awake: []uint64{2, 4}}
	if r.MaxAwake() != 4 || r.AvgAwake() != 3 {
		t.Error("aggregates wrong")
	}
	if (&Result{}).AvgAwake() != 0 {
		t.Error("empty avg not 0")
	}
}

func TestLubyAllFamilies(t *testing.T) {
	r := rng.New(3)
	ud, _ := graph.UnitDisk(128, 0.16, r)
	graphs := map[string]*graph.Graph{
		"empty":  graph.Empty(64),
		"clique": graph.Complete(64),
		"cycle":  graph.Cycle(129),
		"star":   graph.Star(64),
		"gnp":    graph.GNP(128, 0.06, r),
		"tree":   graph.RandomTree(128, r),
		"disk":   ud,
	}
	for name, g := range graphs {
		t.Run(name, func(t *testing.T) {
			res, err := SolveLuby(g, 7)
			if err != nil {
				t.Fatal(err)
			}
			if err := res.Check(g); err != nil {
				t.Fatalf("invalid MIS: %v", err)
			}
		})
	}
}

func TestLubyManySeeds(t *testing.T) {
	g := graph.GNP(200, 0.04, rng.New(4))
	for seed := uint64(0); seed < 20; seed++ {
		res, err := SolveLuby(g, seed)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Check(g); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestLubyIsolatedCheapest(t *testing.T) {
	res, err := SolveLuby(graph.Empty(8), 1)
	if err != nil {
		t.Fatal(err)
	}
	for v, a := range res.Awake {
		if a != 2 {
			t.Errorf("isolated node %d awake %d rounds, want 2", v, a)
		}
		if !res.InMIS[v] {
			t.Errorf("isolated node %d not in MIS", v)
		}
	}
}

func TestLubyAwakeComplexities(t *testing.T) {
	// §1.4 / [13]: worst-case awake is O(log n); node-averaged awake is
	// O(1). Compare n=64 and n=4096: worst-case may grow slowly; the
	// average must stay essentially flat.
	measure := func(n int) (worst float64, avg float64) {
		g := graph.GNP(n, 8.0/float64(n), rng.New(uint64(n)))
		for seed := uint64(0); seed < 5; seed++ {
			res, err := SolveLuby(g, seed)
			if err != nil {
				t.Fatal(err)
			}
			if float64(res.MaxAwake()) > worst {
				worst = float64(res.MaxAwake())
			}
			avg += res.AvgAwake() / 5
		}
		return worst, avg
	}
	worstSmall, avgSmall := measure(64)
	worstBig, avgBig := measure(4096)
	if avgBig > 2*avgSmall {
		t.Errorf("node-averaged awake grew from %v to %v; want ~O(1)", avgSmall, avgBig)
	}
	if worstBig > 4*worstSmall {
		t.Errorf("worst awake grew from %v to %v; want ~O(log n)", worstSmall, worstBig)
	}
	if avgBig > 10 {
		t.Errorf("node-averaged awake = %v; expected a small constant", avgBig)
	}
}

func TestLubyRoundsLogarithmic(t *testing.T) {
	g := graph.GNP(1024, 0.01, rng.New(6))
	res, err := SolveLuby(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	// 2 rounds per phase, O(log n) phases w.h.p.
	if res.Rounds > 2*60 {
		t.Errorf("rounds = %d; expected O(log n) phases × 2", res.Rounds)
	}
}
