// Package congest implements the SLEEPING-CONGEST model discussed in §1.4
// of the paper: the standard synchronous CONGEST message-passing model
// (nodes exchange O(log n)-bit messages with all neighbors each round,
// with no collisions) extended with the sleeping energy measure — a node
// is awake or asleep each round, only awake rounds count toward its awake
// (energy) complexity, and a sleeping node neither sends nor receives.
//
// The package exists as the contrast substrate: the paper's SLEEPING-RADIO
// model is strictly harder (single shared channel, collisions, send XOR
// listen), and comparing the two quantifies what collision-freeness buys.
// It also hosts the classical distributed Luby MIS, whose sleeping-model
// awake complexity — O(log n) worst case, O(1) node-averaged, as studied
// by Chatterjee–Gmyr–Pandurangan [13] — is measured in the tests.
package congest

import (
	"container/heap"
	"errors"
	"fmt"
	"sync"

	"radiomis/internal/graph"
	"radiomis/internal/rng"
)

// DefaultMaxRounds caps simulated time (safety net against livelock).
const DefaultMaxRounds = 1 << 24

// ErrMaxRounds is returned when a run exceeds its round budget.
var ErrMaxRounds = errors.New("congest: exceeded maximum simulated rounds")

// Message is one received CONGEST message.
type Message struct {
	// From is the sending neighbor.
	From int
	// Payload is the message content (one machine word ≈ the CONGEST
	// O(log n)-bit budget).
	Payload uint64
}

// Program is a node algorithm in the sleeping-CONGEST model.
type Program func(env *Env) int64

// Env is a node's handle on the network. All methods must be called from
// the node's program goroutine.
type Env struct {
	id  int
	n   int
	rnd interface {
		Uint64() uint64
		Int63() int64
		Float64() float64
	}
	round uint64

	actCh   chan action
	replyCh chan []Message
	kill    chan struct{}

	energy uint64
}

// ID returns the node's index.
func (e *Env) ID() int { return e.id }

// N returns the network size.
func (e *Env) N() int { return e.n }

// Round returns the round of the node's next action.
func (e *Env) Round() uint64 { return e.round }

// Energy returns the awake rounds spent so far.
func (e *Env) Energy() uint64 { return e.energy }

// Rand64 draws from the node's private random stream.
func (e *Env) Rand64() uint64 { return e.rnd.Uint64() }

// Step spends one awake round: if send is true the node broadcasts payload
// to all neighbors; either way it receives every message broadcast by an
// awake neighbor this round (sorted by sender ID). Unlike the radio model,
// sending and receiving in the same round is allowed and there are no
// collisions.
func (e *Env) Step(send bool, payload uint64) []Message {
	select {
	case e.actCh <- action{kind: actStep, send: send, payload: payload}:
	case <-e.kill:
		panic(killedError{})
	}
	e.round++
	e.energy++
	select {
	case msgs := <-e.replyCh:
		return msgs
	case <-e.kill:
		panic(killedError{})
	}
}

// Sleep skips k rounds at zero energy.
func (e *Env) Sleep(k uint64) {
	if k == 0 {
		return
	}
	select {
	case e.actCh <- action{kind: actSleep, sleep: k}:
	case <-e.kill:
		panic(killedError{})
	}
	e.round += k
}

type killedError struct{}

func (killedError) Error() string { return "congest: node killed by engine shutdown" }

type actionKind int

const (
	actStep actionKind = iota + 1
	actSleep
	actHalt
)

type action struct {
	kind    actionKind
	send    bool
	payload uint64
	sleep   uint64
	result  int64
}

// Config parameterizes a run.
type Config struct {
	// Seed derives per-node random streams.
	Seed uint64
	// MaxRounds caps simulated time; 0 means DefaultMaxRounds.
	MaxRounds uint64
}

// Result summarizes a run.
type Result struct {
	// Outputs holds program return values.
	Outputs []int64
	// Awake holds per-node awake-round counts (the awake complexity).
	Awake []uint64
	// Rounds is the total rounds elapsed until the last awake action.
	Rounds uint64
}

// MaxAwake returns the worst-case awake complexity.
func (r *Result) MaxAwake() uint64 {
	var max uint64
	for _, a := range r.Awake {
		if a > max {
			max = a
		}
	}
	return max
}

// AvgAwake returns the node-averaged awake complexity (the measure of
// Chatterjee–Gmyr–Pandurangan [13]).
func (r *Result) AvgAwake() float64 {
	if len(r.Awake) == 0 {
		return 0
	}
	var sum uint64
	for _, a := range r.Awake {
		sum += a
	}
	return float64(sum) / float64(len(r.Awake))
}

// Run simulates program on every vertex of g and blocks until all nodes
// halt.
func Run(g *graph.Graph, cfg Config, program Program) (*Result, error) {
	maxRounds := cfg.MaxRounds
	if maxRounds == 0 {
		maxRounds = DefaultMaxRounds
	}
	n := g.N()
	res := &Result{Outputs: make([]int64, n), Awake: make([]uint64, n)}
	if n == 0 {
		return res, nil
	}

	kill := make(chan struct{})
	var wg sync.WaitGroup
	envs := make([]*Env, n)
	for i := 0; i < n; i++ {
		envs[i] = &Env{
			id:      i,
			n:       n,
			rnd:     rng.ForNode(cfg.Seed, i),
			actCh:   make(chan action, 1),
			replyCh: make(chan []Message, 1),
			kill:    kill,
		}
	}
	for i := 0; i < n; i++ {
		env := envs[i]
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(killedError); ok {
						return
					}
					panic(r)
				}
			}()
			out := program(env)
			select {
			case env.actCh <- action{kind: actHalt, result: out}:
			case <-env.kill:
			}
		}()
	}

	err := coordinate(g, maxRounds, envs, res)
	close(kill)
	for _, env := range envs {
		select {
		case <-env.actCh:
		default:
		}
	}
	wg.Wait()
	return res, err
}

type event struct {
	round uint64
	id    int
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].round != h[j].round {
		return h[i].round < h[j].round
	}
	return h[i].id < h[j].id
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	x := old[len(old)-1]
	*h = old[:len(old)-1]
	return x
}

func coordinate(g *graph.Graph, maxRounds uint64, envs []*Env, res *Result) error {
	n := len(envs)
	h := make(eventHeap, 0, n)
	for i := 0; i < n; i++ {
		h = append(h, event{round: 0, id: i})
	}
	heap.Init(&h)

	var (
		sendEpoch = make([]uint64, n)
		payload   = make([]uint64, n)
		epoch     uint64
		steppers  []int
		active    = n
	)
	for active > 0 {
		r := h[0].round
		if r >= maxRounds {
			return fmt.Errorf("%w (cap %d)", ErrMaxRounds, maxRounds)
		}
		epoch++
		steppers = steppers[:0]

		var due []int
		for len(h) > 0 && h[0].round == r {
			due = append(due, heap.Pop(&h).(event).id)
		}
		for _, id := range due {
			act := <-envs[id].actCh
			switch act.kind {
			case actStep:
				if act.send {
					sendEpoch[id] = epoch
					payload[id] = act.payload
				}
				steppers = append(steppers, id)
				res.Awake[id]++
				heap.Push(&h, event{round: r + 1, id: id})
			case actSleep:
				heap.Push(&h, event{round: r + act.sleep, id: id})
			case actHalt:
				res.Outputs[id] = act.result
				active--
			default:
				return fmt.Errorf("congest: node %d submitted unknown action %d", id, act.kind)
			}
		}
		for _, id := range steppers {
			var msgs []Message
			for _, w := range g.Neighbors(id) {
				if sendEpoch[w] == epoch {
					msgs = append(msgs, Message{From: w, Payload: payload[w]})
				}
			}
			envs[id].replyCh <- msgs
		}
		if len(steppers) > 0 {
			res.Rounds = r + 1
		}
	}
	return nil
}
