package congest

import (
	"fmt"

	"radiomis/internal/graph"
	"radiomis/internal/mis"
)

// LubyProgram is the classical distributed Luby MIS in the
// sleeping-CONGEST model. Each phase costs an undecided node exactly two
// awake rounds:
//
//  1. Rank exchange: broadcast a fresh random rank, receive the ranks of
//     all still-active neighbors. A node whose rank strictly exceeds every
//     received rank is a local maximum and wins.
//  2. Join announcement: winners broadcast; every other undecided node
//     listens and, on hearing a join, terminates out of the MIS.
//
// Decided nodes halt (sleep forever), so a node's awake complexity is
// 2 × (phases it stays undecided): O(log n) worst case and O(1)
// node-averaged — the sleeping-model baseline the paper's §1.4 contrasts
// the radio model against.
func LubyProgram(maxPhases int) Program {
	return func(env *Env) int64 {
		for phase := 0; phase < maxPhases; phase++ {
			rank := env.Rand64()
			win := true
			for _, m := range env.Step(true, rank) {
				if m.Payload >= rank {
					win = false
				}
			}
			if win {
				env.Step(true, 1) // join announcement
				return int64(mis.StatusInMIS)
			}
			if len(env.Step(false, 0)) > 0 {
				return int64(mis.StatusOutMIS)
			}
		}
		return int64(mis.StatusUndecided)
	}
}

// LubyResult is the outcome of a sleeping-CONGEST Luby run.
type LubyResult struct {
	// InMIS marks the computed set.
	InMIS []bool
	// Awake holds per-node awake-round counts.
	Awake []uint64
	// Rounds is the run's round complexity.
	Rounds uint64
	// Undecided counts nodes that exhausted the phase budget.
	Undecided int
}

// MaxAwake returns the worst-case awake complexity.
func (r *LubyResult) MaxAwake() uint64 {
	var max uint64
	for _, a := range r.Awake {
		if a > max {
			max = a
		}
	}
	return max
}

// AvgAwake returns the node-averaged awake complexity.
func (r *LubyResult) AvgAwake() float64 {
	if len(r.Awake) == 0 {
		return 0
	}
	var sum uint64
	for _, a := range r.Awake {
		sum += a
	}
	return float64(sum) / float64(len(r.Awake))
}

// Check verifies the run produced an MIS of g.
func (r *LubyResult) Check(g *graph.Graph) error {
	if r.Undecided > 0 {
		return fmt.Errorf("congest: %d nodes undecided", r.Undecided)
	}
	return graph.CheckMIS(g, r.InMIS)
}

// SolveLuby runs Luby's algorithm on g in the sleeping-CONGEST model. The
// phase budget is 8·⌈log₂ n⌉ + 16, far beyond Luby's O(log n) w.h.p.
// termination.
func SolveLuby(g *graph.Graph, seed uint64) (*LubyResult, error) {
	maxPhases := 16
	for n := 1; n < g.N(); n *= 2 {
		maxPhases += 8
	}
	rr, err := Run(g, Config{Seed: seed}, LubyProgram(maxPhases))
	if err != nil {
		return nil, fmt.Errorf("congest: luby run: %w", err)
	}
	res := &LubyResult{
		InMIS:  make([]bool, g.N()),
		Awake:  rr.Awake,
		Rounds: rr.Rounds,
	}
	for v, out := range rr.Outputs {
		switch mis.Status(out) {
		case mis.StatusInMIS:
			res.InMIS[v] = true
		case mis.StatusUndecided:
			res.Undecided++
		}
	}
	return res, nil
}
