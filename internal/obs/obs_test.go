package obs

import (
	"testing"

	"radiomis/internal/graph"
	"radiomis/internal/radio"
)

// pingPong is a two-phase toy program on a star: the hub listens in phase
// "rx" while leaves transmit in phase "tx", then everyone flips.
func pingPong(env *radio.Env) int64 {
	if env.ID() == 0 {
		env.Phase("rx")
		env.Listen()
		env.Phase("tx")
		env.TransmitBit()
		return 0
	}
	env.Phase("tx")
	env.TransmitBit()
	env.Phase("rx")
	env.Listen()
	return 0
}

func TestCounterTotals(t *testing.T) {
	g := graph.Star(4) // 4 nodes: hub 0 with 3 leaves
	c := &Counter{}
	res, err := radio.Run(g, radio.Config{Model: radio.ModelCD, Seed: 1, Observer: c}, pingPong)
	if err != nil {
		t.Fatal(err)
	}
	if c.Rounds != 2 {
		t.Errorf("Rounds = %d, want 2", c.Rounds)
	}
	if c.Transmits != 4 || c.Listens != 4 {
		t.Errorf("Transmits/Listens = %d/%d, want 4/4", c.Transmits, c.Listens)
	}
	if c.Transmits+c.Listens != res.TotalEnergy() {
		t.Errorf("counter actions %d != total energy %d", c.Transmits+c.Listens, res.TotalEnergy())
	}
	if c.Successes+c.Collisions+c.Silences != c.Listens {
		t.Errorf("outcome classes %d+%d+%d don't sum to listens %d",
			c.Successes, c.Collisions, c.Silences, c.Listens)
	}
	// Round 0: hub hears 3 leaves (collision). Round 1: each leaf hears
	// only the hub (success).
	if c.Collisions != 1 || c.Successes != 3 {
		t.Errorf("collisions/successes = %d/%d, want 1/3", c.Collisions, c.Successes)
	}
	if c.Halts != 4 {
		t.Errorf("Halts = %d, want 4", c.Halts)
	}
}

func TestPhaseBreakdownAttributesPingPong(t *testing.T) {
	g := graph.Star(3)
	b := NewPhaseBreakdown(g.N())
	res, err := radio.Run(g, radio.Config{Model: radio.ModelCD, Seed: 1, Observer: b}, pingPong)
	if err != nil {
		t.Fatal(err)
	}
	phases := b.Phases()
	if len(phases) != 2 {
		t.Fatalf("saw %d phases, want 2 (rx, tx)", len(phases))
	}
	rx, tx := b.Phase("rx"), b.Phase("tx")
	if rx == nil || tx == nil {
		t.Fatal("missing rx or tx phase")
	}
	for id := 0; id < g.N(); id++ {
		if rx.Listens[id] != 1 || rx.Transmits[id] != 0 {
			t.Errorf("node %d rx: listens=%d transmits=%d, want 1/0", id, rx.Listens[id], rx.Transmits[id])
		}
		if tx.Transmits[id] != 1 || tx.Listens[id] != 0 {
			t.Errorf("node %d tx: transmits=%d listens=%d, want 1/0", id, tx.Transmits[id], tx.Listens[id])
		}
		if got := b.NodeEnergy(id); got != res.Energy[id] {
			t.Errorf("node %d attributed energy %d != actual %d", id, got, res.Energy[id])
		}
	}
	// The hub's one listen collides (both leaves transmit); the leaves'
	// listens succeed.
	if rx.Collisions[0] != 1 {
		t.Errorf("hub rx collisions = %d, want 1", rx.Collisions[0])
	}
	if rx.TotalCollisions() != 1 {
		t.Errorf("total collisions = %d, want 1", rx.TotalCollisions())
	}
	if tx.TotalAwake() != uint64(g.N()) || rx.TotalAwake() != uint64(g.N()) {
		t.Errorf("per-phase awake totals = %d/%d, want %d each",
			tx.TotalAwake(), rx.TotalAwake(), g.N())
	}
	if b.Halts != g.N() {
		t.Errorf("Halts = %d, want %d", b.Halts, g.N())
	}
}

func TestPhaseBreakdownUnlabeledActionsLandInEmptyPhase(t *testing.T) {
	g := graph.Path(2)
	b := NewPhaseBreakdown(g.N())
	_, err := radio.Run(g, radio.Config{Model: radio.ModelCD, Seed: 1, Observer: b}, func(env *radio.Env) int64 {
		env.Listen() // no Phase call: attributed to ""
		return 0
	})
	if err != nil {
		t.Fatal(err)
	}
	p := b.Phase("")
	if p == nil || p.TotalListens() != 2 {
		t.Fatalf("unlabeled listens not attributed to the empty phase: %+v", p)
	}
}

func TestPhaseBreakdownFirstSeenOrder(t *testing.T) {
	g := graph.New(1)
	b := NewPhaseBreakdown(1)
	_, err := radio.Run(g, radio.Config{Model: radio.ModelCD, Seed: 1, Observer: b}, func(env *radio.Env) int64 {
		for _, name := range []string{"c", "a", "b", "a"} {
			env.Phase(name)
			env.Listen()
		}
		return 0
	})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, p := range b.Phases() {
		got = append(got, p.Name)
	}
	want := []string{"c", "a", "b"}
	if len(got) != len(want) {
		t.Fatalf("phases = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("phases = %v, want %v (first-seen order)", got, want)
		}
	}
	if b.Phase("a").Awake[0] != 2 {
		t.Errorf("phase a awake = %d, want 2", b.Phase("a").Awake[0])
	}
}
