package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"radiomis/internal/graph"
	"radiomis/internal/radio"
	"radiomis/internal/trace"
)

// TestChromeTracerMergesSpans drives an observed engine run and a traced
// wall-clock operation into one Chrome trace file and checks both stories
// survive: engine phase events on pid 0 (ts in simulated rounds) and the
// span tree on pid trace.WallPid (ts in µs), each span event carrying its
// trace/span IDs.
func TestChromeTracerMergesSpans(t *testing.T) {
	g := graph.Star(3)
	var buf bytes.Buffer
	c := NewChromeTracer(&buf)
	if _, err := radio.Run(g, radio.Config{Model: radio.ModelCD, Seed: 1, Observer: c}, pingPong); err != nil {
		t.Fatal(err)
	}

	tr := trace.NewSeeded(16, 1)
	ctx, root := tr.Start(context.Background(), "request")
	_, child := tr.Start(ctx, "work")
	child.End()
	root.End()
	c.AppendSpans(tr.Spans())

	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	var events []struct {
		Name string         `json:"name"`
		Pid  int            `json:"pid"`
		Args map[string]any `json:"args"`
	}
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("merged trace is not a valid JSON array: %v\n%s", err, buf.String())
	}
	var engine, wall int
	for _, ev := range events {
		switch ev.Pid {
		case 0:
			engine++
		case trace.WallPid:
			wall++
			if _, ok := ev.Args["traceId"]; !ok {
				t.Errorf("span event %q has no traceId arg", ev.Name)
			}
		default:
			t.Errorf("event %q on unexpected pid %d", ev.Name, ev.Pid)
		}
	}
	if engine == 0 {
		t.Error("no engine phase events on pid 0")
	}
	if wall != 2 {
		t.Errorf("got %d span events on pid %d, want 2", wall, trace.WallPid)
	}
}
