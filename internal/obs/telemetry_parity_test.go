package obs

import (
	"bytes"
	"testing"

	"radiomis/internal/graph"
	"radiomis/internal/radio"
	"radiomis/internal/rng"
)

// TestJSONLIdenticalWithPerfAttached is the exporter-level neutrality
// check for the telemetry layer: the JSONL observer stream of a run must
// be byte-identical with and without radio.Config.Perf attached.
// Observers record what the algorithm did; RunPerf records where the
// wall-clock went — attaching the latter can never change the former.
func TestJSONLIdenticalWithPerfAttached(t *testing.T) {
	for name, g := range map[string]*graph.Graph{
		"star":   graph.Star(6),
		"gnp":    graph.GNP(64, 8.0/64, rng.New(5)),
		"single": graph.New(1),
	} {
		t.Run(name, func(t *testing.T) {
			render := func(perf *radio.RunPerf) []byte {
				var buf bytes.Buffer
				w := NewJSONLWriter(&buf)
				cfg := radio.Config{Model: radio.ModelCD, Seed: 17, Observer: w, Perf: perf}
				if _, err := radio.Run(g, cfg, pingPong); err != nil {
					t.Fatal(err)
				}
				if err := w.Flush(); err != nil {
					t.Fatal(err)
				}
				return buf.Bytes()
			}
			plain := render(nil)
			instrumented := render(&radio.RunPerf{})
			if !bytes.Equal(plain, instrumented) {
				t.Errorf("JSONL stream changed when Perf was attached:\noff:\n%s\non:\n%s", plain, instrumented)
			}
		})
	}
}
