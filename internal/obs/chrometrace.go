package obs

import (
	"bufio"
	"encoding/json"
	"io"

	"radiomis/internal/radio"
	"radiomis/internal/trace"
)

// ChromeTracer streams a run in the Chrome trace-event format (the JSON
// array flavor) so it can be inspected visually in chrome://tracing or
// https://ui.perfetto.dev: one track (tid) per node, one 1-"µs" duration
// event per awake action at ts = round, named after the node's phase label
// (or the bare action when unlabeled), plus an instant event when the node
// halts. Close terminates the array and flushes; without it the file is
// truncated (though both viewers tolerate a missing "]").
//
// Write errors are sticky: the first one is retained, later events are
// dropped, and Close reports it.
type ChromeTracer struct {
	bw    *bufio.Writer
	err   error
	wrote bool // at least one event emitted (controls comma placement)
}

var _ radio.Observer = (*ChromeTracer)(nil)

// NewChromeTracer returns a tracer streaming trace events to w.
func NewChromeTracer(w io.Writer) *ChromeTracer {
	c := &ChromeTracer{bw: bufio.NewWriter(w)}
	_, c.err = c.bw.WriteString("[")
	return c
}

type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	Ts    uint64         `json:"ts"`
	Dur   uint64         `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

func (c *ChromeTracer) emit(ev *chromeEvent) {
	if c.err != nil {
		return
	}
	b, err := json.Marshal(ev)
	if err != nil {
		c.err = err
		return
	}
	c.emitRaw(b)
}

// emitRaw appends one pre-marshaled trace event to the open array.
func (c *ChromeTracer) emitRaw(b []byte) {
	if c.err != nil {
		return
	}
	if c.wrote {
		if _, c.err = c.bw.WriteString(",\n"); c.err != nil {
			return
		}
	} else {
		if _, c.err = c.bw.WriteString("\n"); c.err != nil {
			return
		}
	}
	if _, c.err = c.bw.Write(b); c.err != nil {
		return
	}
	c.wrote = true
}

func eventName(phase, action string) string {
	if phase != "" {
		return phase
	}
	return action
}

// ObserveRound implements radio.Observer.
func (c *ChromeTracer) ObserveRound(s *radio.RoundStats) {
	for _, tx := range s.Transmitters {
		c.emit(&chromeEvent{
			Name:  eventName(tx.Phase, "transmit"),
			Phase: "X",
			Ts:    s.Round,
			Dur:   1,
			Tid:   tx.ID,
			Args:  map[string]any{"action": "transmit", "payload": tx.Payload},
		})
	}
	for _, rx := range s.Listeners {
		c.emit(&chromeEvent{
			Name:  eventName(rx.Phase, "listen"),
			Phase: "X",
			Ts:    s.Round,
			Dur:   1,
			Tid:   rx.ID,
			Args: map[string]any{
				"action":      "listen",
				"outcome":     rx.Outcome.String(),
				"txNeighbors": rx.TxNeighbors,
			},
		})
	}
}

// ObserveHalt implements radio.Observer.
func (c *ChromeTracer) ObserveHalt(id int, output int64, energy uint64, round uint64) {
	c.emit(&chromeEvent{
		Name:  "halt",
		Phase: "i",
		Ts:    round,
		Tid:   id,
		Scope: "t",
		Args:  map[string]any{"output": output, "energy": energy},
	})
}

// AppendSpans merges finished wall-clock spans from internal/trace into
// the open trace-event array. Span events land on their own Chrome
// "process" (trace.WallPid), separate from the engine's simulated-rounds
// events on pid 0, so one file shows the whole story: the per-request
// span tree (HTTP → job → harness trials → engine round slices) in wall
// time alongside the per-node phase timeline in simulated rounds. Call it
// any time before Close.
func (c *ChromeTracer) AppendSpans(spans []*trace.Span) {
	evs, err := trace.ChromeEvents(spans)
	if err != nil {
		if c.err == nil {
			c.err = err
		}
		return
	}
	for _, b := range evs {
		c.emitRaw(b)
	}
}

// Close terminates the JSON array, flushes the buffer, and returns the
// first error encountered, if any.
func (c *ChromeTracer) Close() error {
	if c.err != nil {
		return c.err
	}
	if _, c.err = c.bw.WriteString("\n]\n"); c.err != nil {
		return c.err
	}
	c.err = c.bw.Flush()
	return c.err
}
