package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"testing"

	"radiomis/internal/graph"
	"radiomis/internal/radio"
)

func TestJSONLWriterStreamsValidLines(t *testing.T) {
	g := graph.Star(3)
	var buf bytes.Buffer
	w := NewJSONLWriter(&buf)
	_, err := radio.Run(g, radio.Config{Model: radio.ModelNoCD, Seed: 1, Observer: w}, pingPong)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	var rounds, halts int
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var ev struct {
			Ev    string `json:"ev"`
			Round uint64 `json:"round"`
			Tx    []struct {
				ID      int    `json:"id"`
				Phase   string `json:"phase"`
				Payload uint64 `json:"payload"`
			} `json:"tx"`
			Rx []struct {
				ID          int    `json:"id"`
				Phase       string `json:"phase"`
				TxNeighbors int    `json:"txNeighbors"`
				Outcome     string `json:"outcome"`
			} `json:"rx"`
			Successes  int `json:"successes"`
			Collisions int `json:"collisions"`
			Silences   int `json:"silences"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("invalid JSONL line %q: %v", sc.Text(), err)
		}
		switch ev.Ev {
		case "round":
			rounds++
			if ev.Successes+ev.Collisions+ev.Silences != len(ev.Rx) {
				t.Errorf("round %d: outcome counts don't sum to listeners", ev.Round)
			}
			for _, rx := range ev.Rx {
				if rx.Outcome == "" {
					t.Errorf("round %d: listener %d has empty outcome", ev.Round, rx.ID)
				}
			}
		case "halt":
			halts++
		default:
			t.Errorf("unknown event type %q", ev.Ev)
		}
	}
	if rounds != 2 || halts != 3 {
		t.Errorf("saw %d rounds and %d halts, want 2 and 3", rounds, halts)
	}
}

func TestJSONLWriterCarriesPhases(t *testing.T) {
	g := graph.Path(2)
	var buf bytes.Buffer
	w := NewJSONLWriter(&buf)
	_, err := radio.Run(g, radio.Config{Model: radio.ModelCD, Seed: 1, Observer: w}, func(env *radio.Env) int64 {
		env.Phase("probe")
		if env.ID() == 0 {
			env.TransmitBit()
		} else {
			env.Listen()
		}
		return 0
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"phase":"probe"`)) {
		t.Errorf("phase label missing from JSONL output:\n%s", buf.String())
	}
}

type failAfter struct {
	n int
}

func (f *failAfter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errors.New("disk full")
	}
	f.n -= len(p)
	return len(p), nil
}

func TestJSONLWriterStickyError(t *testing.T) {
	g := graph.Complete(4)
	w := NewJSONLWriter(&failAfter{n: 16})
	_, err := radio.Run(g, radio.Config{Model: radio.ModelCD, Seed: 1, Observer: w}, func(env *radio.Env) int64 {
		for i := 0; i < 200; i++ {
			env.Listen()
		}
		return 0
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.Flush() == nil {
		t.Error("Flush did not report the write error")
	}
	if w.Err() == nil {
		t.Error("Err did not retain the write error")
	}
}

func TestChromeTracerEmitsValidTrace(t *testing.T) {
	g := graph.Star(3)
	var buf bytes.Buffer
	c := NewChromeTracer(&buf)
	_, err := radio.Run(g, radio.Config{Model: radio.ModelCD, Seed: 1, Observer: c}, pingPong)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	var events []struct {
		Name  string         `json:"name"`
		Phase string         `json:"ph"`
		Ts    uint64         `json:"ts"`
		Dur   uint64         `json:"dur"`
		Pid   int            `json:"pid"`
		Tid   int            `json:"tid"`
		Args  map[string]any `json:"args"`
	}
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("trace is not a valid JSON array: %v\n%s", err, buf.String())
	}
	// 6 awake actions (3 nodes × 2 rounds) + 3 halt instants.
	var durs, instants int
	for _, ev := range events {
		switch ev.Phase {
		case "X":
			durs++
			if ev.Dur != 1 {
				t.Errorf("duration event %q has dur %d, want 1", ev.Name, ev.Dur)
			}
			if ev.Name != "rx" && ev.Name != "tx" {
				t.Errorf("event named %q, want the phase label rx or tx", ev.Name)
			}
		case "i":
			instants++
			if ev.Name != "halt" {
				t.Errorf("instant event named %q, want halt", ev.Name)
			}
		default:
			t.Errorf("unexpected event phase %q", ev.Phase)
		}
		if ev.Tid < 0 || ev.Tid >= g.N() {
			t.Errorf("event tid %d out of node range", ev.Tid)
		}
	}
	if durs != 6 || instants != 3 {
		t.Errorf("saw %d duration and %d instant events, want 6 and 3", durs, instants)
	}
}

func TestChromeTracerUnlabeledFallsBackToAction(t *testing.T) {
	g := graph.Path(2)
	var buf bytes.Buffer
	c := NewChromeTracer(&buf)
	_, err := radio.Run(g, radio.Config{Model: radio.ModelCD, Seed: 1, Observer: c}, func(env *radio.Env) int64 {
		if env.ID() == 0 {
			env.TransmitBit()
		} else {
			env.Listen()
		}
		return 0
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"name":"transmit"`)) ||
		!bytes.Contains(buf.Bytes(), []byte(`"name":"listen"`)) {
		t.Errorf("unlabeled actions not named after the action:\n%s", buf.String())
	}
}

func TestChromeTracerStickyError(t *testing.T) {
	c := NewChromeTracer(&failAfter{n: 4})
	s := &radio.RoundStats{Round: 0, Transmitters: []radio.NodeTx{{ID: 0, Payload: 1}}}
	for i := 0; i < 500; i++ {
		c.ObserveRound(s)
	}
	if c.Close() == nil {
		t.Error("Close did not report the write error")
	}
}
