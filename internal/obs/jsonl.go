package obs

import (
	"bufio"
	"encoding/json"
	"io"

	"radiomis/internal/radio"
)

// JSONL event shapes. Every line is one self-contained JSON object with an
// "ev" discriminator: "round" or "halt".
type jsonlTx struct {
	ID      int    `json:"id"`
	Phase   string `json:"phase,omitempty"`
	Payload uint64 `json:"payload"`
}

type jsonlRx struct {
	ID          int    `json:"id"`
	Phase       string `json:"phase,omitempty"`
	TxNeighbors int    `json:"txNeighbors"`
	// Lost is the number of this listener's incoming transmissions dropped
	// by the fault layer (TxNeighbors − Delivered); omitted when zero so
	// clean-run output is byte-identical to the pre-fault format.
	Lost    int    `json:"lost,omitempty"`
	Outcome string `json:"outcome"`
}

type jsonlRound struct {
	Ev         string    `json:"ev"`
	Round      uint64    `json:"round"`
	Tx         []jsonlTx `json:"tx"`
	Rx         []jsonlRx `json:"rx"`
	Successes  int       `json:"successes"`
	Collisions int       `json:"collisions"`
	Silences   int       `json:"silences"`
	// Fault-layer fields, all omitted on clean runs (see jsonlRx.Lost).
	Jammed  bool  `json:"jammed,omitempty"`
	Lost    int   `json:"lost,omitempty"`
	Noised  int   `json:"noised,omitempty"`
	Crashed []int `json:"crashed,omitempty"`
}

type jsonlHalt struct {
	Ev     string `json:"ev"`
	ID     int    `json:"id"`
	Output int64  `json:"output"`
	Energy uint64 `json:"energy"`
	Round  uint64 `json:"round"`
}

// JSONLWriter streams a run as JSON Lines: one "round" object per active
// round and one "halt" object per node termination. The stream is buffered;
// call Flush when the run ends. Write errors are sticky — the first one is
// retained and reported by Flush/Err, and later events are dropped.
type JSONLWriter struct {
	bw  *bufio.Writer
	enc *json.Encoder
	err error
	// reused event buffers
	round jsonlRound
}

var _ radio.Observer = (*JSONLWriter)(nil)

// NewJSONLWriter returns a writer streaming events to w.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	bw := bufio.NewWriter(w)
	return &JSONLWriter{bw: bw, enc: json.NewEncoder(bw)}
}

// ObserveRound implements radio.Observer.
func (j *JSONLWriter) ObserveRound(s *radio.RoundStats) {
	if j.err != nil {
		return
	}
	ev := &j.round
	*ev = jsonlRound{
		Ev:         "round",
		Round:      s.Round,
		Tx:         ev.Tx[:0],
		Rx:         ev.Rx[:0],
		Successes:  s.Successes,
		Collisions: s.Collisions,
		Silences:   s.Silences,
		Jammed:     s.Jammed,
		Lost:       s.Lost,
		Noised:     s.Noised,
	}
	if len(s.Crashed) > 0 {
		ev.Crashed = append(ev.Crashed[:0], s.Crashed...)
	}
	for _, tx := range s.Transmitters {
		ev.Tx = append(ev.Tx, jsonlTx{ID: tx.ID, Phase: tx.Phase, Payload: tx.Payload})
	}
	for _, rx := range s.Listeners {
		ev.Rx = append(ev.Rx, jsonlRx{
			ID:          rx.ID,
			Phase:       rx.Phase,
			TxNeighbors: rx.TxNeighbors,
			Lost:        rx.TxNeighbors - rx.Delivered,
			Outcome:     rx.Outcome.String(),
		})
	}
	j.err = j.enc.Encode(ev)
}

// ObserveHalt implements radio.Observer.
func (j *JSONLWriter) ObserveHalt(id int, output int64, energy uint64, round uint64) {
	if j.err != nil {
		return
	}
	j.err = j.enc.Encode(jsonlHalt{Ev: "halt", ID: id, Output: output, Energy: energy, Round: round})
}

// Flush drains the buffer and returns the first error encountered, if any.
func (j *JSONLWriter) Flush() error {
	if j.err != nil {
		return j.err
	}
	j.err = j.bw.Flush()
	return j.err
}

// Err returns the first write or encode error, if any.
func (j *JSONLWriter) Err() error { return j.err }
