// Package obs provides the structured observability layer on top of the
// radio engine's Observer interface: streaming aggregators that attribute
// energy and collisions to algorithm phases with bounded memory, and
// exporters that stream a run as JSONL events or as a Chrome trace-event
// file (load it in chrome://tracing or https://ui.perfetto.dev) for visual
// timeline inspection.
//
// Everything here consumes radio.RoundStats; attach any combination of
// aggregators and exporters to a run via radio.Config.Observer (use
// radio.MultiObserver for several at once). The aggregators retain
// per-(phase, node) counters only — never per-event history — so they are
// safe on runs of any length.
package obs

import "radiomis/internal/radio"

// Counter accumulates run-wide totals of awake actions and reception
// outcomes — the cheapest possible summary of where collisions happened.
type Counter struct {
	// Rounds counts observed (active) rounds.
	Rounds uint64
	// Transmits and Listens count awake actions across all nodes.
	Transmits uint64
	Listens   uint64
	// Successes, Collisions, and Silences classify every listen by the
	// number of transmitters the listener perceived (1, ≥2, 0 respectively;
	// on faulty runs this is the perturbed channel, not the physical ground
	// truth). Their sum equals Listens.
	Successes  uint64
	Collisions uint64
	Silences   uint64
	// Halts counts node program terminations.
	Halts int
	// Fault-layer totals; all zero on clean runs.
	Jams    uint64 // rounds jammed by the adversary
	Lost    uint64 // transmitter→listener deliveries dropped
	Noised  uint64 // listener-rounds hit by spurious-collision noise
	Crashes uint64 // node crash events
}

var _ radio.Observer = (*Counter)(nil)

// ObserveRound implements radio.Observer.
func (c *Counter) ObserveRound(s *radio.RoundStats) {
	c.Rounds++
	c.Transmits += uint64(len(s.Transmitters))
	c.Listens += uint64(len(s.Listeners))
	c.Successes += uint64(s.Successes)
	c.Collisions += uint64(s.Collisions)
	c.Silences += uint64(s.Silences)
	if s.Jammed {
		c.Jams++
	}
	c.Lost += uint64(s.Lost)
	c.Noised += uint64(s.Noised)
	c.Crashes += uint64(len(s.Crashed))
}

// ObserveHalt implements radio.Observer.
func (c *Counter) ObserveHalt(int, int64, uint64, uint64) { c.Halts++ }
