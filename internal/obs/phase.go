package obs

import "radiomis/internal/radio"

// PhaseStats holds the per-node counters accumulated for one phase label.
// Slices are indexed by node ID.
type PhaseStats struct {
	// Name is the phase label as set via Env.Phase; actions taken with no
	// label appear under "".
	Name string
	// Awake counts awake rounds (transmits + listens) each node spent in
	// this phase — the phase's share of the node's energy.
	Awake []uint64
	// Transmits and Listens split Awake by action.
	Transmits []uint64
	Listens   []uint64
	// Collisions counts listens during which ≥ 2 neighbors transmitted
	// (the physical count, even under models that mask collisions).
	Collisions []uint64
}

// TotalAwake sums Awake over all nodes.
func (p *PhaseStats) TotalAwake() uint64 { return sum(p.Awake) }

// TotalCollisions sums Collisions over all nodes.
func (p *PhaseStats) TotalCollisions() uint64 { return sum(p.Collisions) }

// TotalTransmits sums Transmits over all nodes.
func (p *PhaseStats) TotalTransmits() uint64 { return sum(p.Transmits) }

// TotalListens sums Listens over all nodes.
func (p *PhaseStats) TotalListens() uint64 { return sum(p.Listens) }

func sum(xs []uint64) uint64 {
	var t uint64
	for _, x := range xs {
		t += x
	}
	return t
}

// PhaseBreakdown attributes every awake action of a run to the phase label
// the acting node had set, per (phase, node). It aggregates streamingly —
// memory is O(phases × nodes) regardless of run length — so it is safe to
// attach to arbitrarily long simulations.
//
// For every node, the Awake counts summed across all phases equal the
// node's Result.Energy exactly: each unit of energy is one transmit or
// listen, and each is attributed to exactly one phase.
type PhaseBreakdown struct {
	n      int
	order  []*PhaseStats
	byName map[string]*PhaseStats
	// Halts counts node program terminations observed.
	Halts int
}

var _ radio.Observer = (*PhaseBreakdown)(nil)

// NewPhaseBreakdown returns a breakdown for an n-node run.
func NewPhaseBreakdown(n int) *PhaseBreakdown {
	return &PhaseBreakdown{n: n, byName: make(map[string]*PhaseStats)}
}

// Phases returns the accumulated per-phase stats in first-seen order. The
// returned slice and its entries are live — read them after the run.
func (b *PhaseBreakdown) Phases() []*PhaseStats { return b.order }

// Phase returns the stats for one label, or nil if never seen.
func (b *PhaseBreakdown) Phase(name string) *PhaseStats { return b.byName[name] }

// NodeEnergy returns node id's awake rounds summed across all phases. On a
// completed run it equals Result.Energy[id].
func (b *PhaseBreakdown) NodeEnergy(id int) uint64 {
	var t uint64
	for _, p := range b.order {
		t += p.Awake[id]
	}
	return t
}

func (b *PhaseBreakdown) phase(name string) *PhaseStats {
	p := b.byName[name]
	if p == nil {
		p = &PhaseStats{
			Name:       name,
			Awake:      make([]uint64, b.n),
			Transmits:  make([]uint64, b.n),
			Listens:    make([]uint64, b.n),
			Collisions: make([]uint64, b.n),
		}
		b.byName[name] = p
		b.order = append(b.order, p)
	}
	return p
}

// ObserveRound implements radio.Observer.
func (b *PhaseBreakdown) ObserveRound(s *radio.RoundStats) {
	for _, tx := range s.Transmitters {
		p := b.phase(tx.Phase)
		p.Awake[tx.ID]++
		p.Transmits[tx.ID]++
	}
	for _, rx := range s.Listeners {
		p := b.phase(rx.Phase)
		p.Awake[rx.ID]++
		p.Listens[rx.ID]++
		if rx.TxNeighbors >= 2 {
			p.Collisions[rx.ID]++
		}
	}
}

// ObserveHalt implements radio.Observer.
func (b *PhaseBreakdown) ObserveHalt(int, int64, uint64, uint64) { b.Halts++ }
