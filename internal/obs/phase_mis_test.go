package obs

import (
	"testing"

	"radiomis/internal/backoff"
	"radiomis/internal/graph"
	"radiomis/internal/mis"
	"radiomis/internal/radio"
	"radiomis/internal/rng"
)

// The acceptance property of the phase instrumentation: on a real MIS run,
// PhaseBreakdown attributes 100% of every node's energy to named phases —
// the per-node sums match Result.Energy exactly and no action falls into
// the unnamed ("") bucket.

func assertFullAttribution(t *testing.T, b *PhaseBreakdown, res *radio.Result) {
	t.Helper()
	if p := b.Phase(""); p != nil && p.TotalAwake() > 0 {
		t.Errorf("%d awake rounds fell into the unnamed phase", p.TotalAwake())
	}
	for id := range res.Energy {
		if got := b.NodeEnergy(id); got != res.Energy[id] {
			t.Errorf("node %d: attributed %d awake rounds, engine counted %d", id, got, res.Energy[id])
		}
	}
}

func TestPhaseBreakdownCoversCDMIS(t *testing.T) {
	g := graph.GNP(40, 0.2, rng.New(7))
	p := mis.ParamsDefault(40, g.MaxDegree())
	b := NewPhaseBreakdown(g.N())
	res, err := radio.Run(g, radio.Config{Model: radio.ModelCD, Seed: 7, Observer: b}, mis.CDProgram(p))
	if err != nil {
		t.Fatal(err)
	}
	assertFullAttribution(t, b, res)
	for _, ph := range b.Phases() {
		switch ph.Name {
		case "competition", "check":
		default:
			t.Errorf("unexpected phase %q in CD run", ph.Name)
		}
	}
	if b.Phase("competition") == nil || b.Phase("check") == nil {
		t.Error("CD run missing competition or check phase")
	}
	// The competition dominates: every Luby phase spends up to B rounds
	// competing and exactly one checking.
	if comp, chk := b.Phase("competition").TotalAwake(), b.Phase("check").TotalAwake(); comp <= chk {
		t.Errorf("competition energy %d not dominant over check energy %d", comp, chk)
	}
}

func TestPhaseBreakdownCoversNoCDMIS(t *testing.T) {
	if testing.Short() {
		t.Skip("no-CD MIS run is slow")
	}
	g := graph.GNP(24, 0.25, rng.New(3))
	p := mis.ParamsDefault(24, g.MaxDegree())
	b := NewPhaseBreakdown(g.N())
	res, err := radio.Run(g, radio.Config{Model: radio.ModelNoCD, Seed: 3, Observer: b}, mis.NoCDProgram(p))
	if err != nil {
		t.Fatal(err)
	}
	assertFullAttribution(t, b, res)
	known := map[string]bool{
		"competition": true, "deep-check": true, "announce": true,
		"low-degree": true, "shallow-check": true,
	}
	for _, ph := range b.Phases() {
		if !known[ph.Name] {
			t.Errorf("unexpected phase %q in no-CD run", ph.Name)
		}
	}
	if b.Phase("competition") == nil {
		t.Error("no-CD run missing competition phase")
	}
}

func TestPhaseBreakdownCoversLowDegreeBaseline(t *testing.T) {
	g := graph.GNP(20, 0.2, rng.New(5))
	p := mis.ParamsDefault(20, g.MaxDegree())
	b := NewPhaseBreakdown(g.N())
	res, err := radio.Run(g, radio.Config{Model: radio.ModelNoCD, Seed: 5, Observer: b}, mis.LowDegreeProgram(p))
	if err != nil {
		t.Fatal(err)
	}
	assertFullAttribution(t, b, res)
	if b.Phase("low-degree") == nil {
		t.Error("standalone LowDegreeMIS run not labeled low-degree")
	}
}

// The backoff primitives claim their own labels only when the caller has
// not set a phase: standalone use shows snd-/rec-ebackoff, while a caller
// label like "competition" is never overwritten.
func TestBackoffPrimitivesSelfLabel(t *testing.T) {
	g := graph.Path(2)
	const k, delta = 4, 4
	b := NewPhaseBreakdown(g.N())
	res, err := radio.Run(g, radio.Config{Model: radio.ModelNoCD, Seed: 2, Observer: b},
		func(env *radio.Env) int64 {
			if env.ID() == 0 {
				backoff.Send(env, k, delta, 1)
				return 0
			}
			backoff.Receive(env, k, delta, 0)
			return 0
		})
	if err != nil {
		t.Fatal(err)
	}
	assertFullAttribution(t, b, res)
	snd, rec := b.Phase("snd-ebackoff"), b.Phase("rec-ebackoff")
	if snd == nil || rec == nil {
		t.Fatal("standalone backoffs did not self-label")
	}
	if snd.Transmits[0] != k {
		t.Errorf("sender transmits = %d, want %d", snd.Transmits[0], k)
	}
	if rec.Listens[1] == 0 || rec.Transmits[1] != 0 {
		t.Errorf("receiver stats wrong: %d listens, %d transmits", rec.Listens[1], rec.Transmits[1])
	}

	// With a caller-set phase, the primitives must not claim the span.
	b2 := NewPhaseBreakdown(g.N())
	res2, err := radio.Run(g, radio.Config{Model: radio.ModelNoCD, Seed: 2, Observer: b2},
		func(env *radio.Env) int64 {
			env.Phase("caller")
			if env.ID() == 0 {
				backoff.Send(env, k, delta, 1)
				return 0
			}
			backoff.Receive(env, k, delta, 0)
			return 0
		})
	if err != nil {
		t.Fatal(err)
	}
	assertFullAttribution(t, b2, res2)
	if len(b2.Phases()) != 1 || b2.Phase("caller") == nil {
		t.Errorf("caller label overwritten: phases = %v", phaseNames(b2))
	}
}

func phaseNames(b *PhaseBreakdown) []string {
	var out []string
	for _, p := range b.Phases() {
		out = append(out, p.Name)
	}
	return out
}
