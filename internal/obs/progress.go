package obs

import "context"

// ProgressEvent is one coarse-grained progress notification from a
// long-running computation: a completed trial of a harness batch, a
// finished sweep position, or a job-level state change. It deliberately
// mirrors the JSONL exporter's event style (small, self-contained,
// discriminated records) so servers can stream progress as JSON lines.
type ProgressEvent struct {
	// Stage names what advanced: "trial" (one harness trial finished),
	// "sweep" (one sweep position finished), or a caller-defined label.
	Stage string `json:"stage"`
	// Done and Total count completed units of the stage.
	Done  int `json:"done"`
	Total int `json:"total"`
	// X is the sweep position (typically the network size n) when the
	// stage has an axis; 0 otherwise.
	X float64 `json:"x,omitempty"`
}

// ProgressFunc receives progress events. Implementations must be safe for
// concurrent use: harness trials complete on multiple goroutines.
type ProgressFunc func(ProgressEvent)

type progressKey struct{}

// ContextWithProgress returns a copy of ctx that carries fn as its
// progress sink. Computations below (harness.Repeat, harness.Sweep, and
// anything else that calls Report) deliver their progress events to fn.
func ContextWithProgress(ctx context.Context, fn ProgressFunc) context.Context {
	return context.WithValue(ctx, progressKey{}, fn)
}

// Report delivers ev to the progress sink carried by ctx, if any. It is a
// no-op — and allocation-free — when no sink is installed, so library code
// can call it unconditionally.
func Report(ctx context.Context, ev ProgressEvent) {
	if fn, ok := ctx.Value(progressKey{}).(ProgressFunc); ok && fn != nil {
		fn(ev)
	}
}
