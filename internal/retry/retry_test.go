package retry

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"testing"
	"time"
)

// seq returns a rand01 source that replays the given values in order.
func seq(t *testing.T, vals ...float64) func() float64 {
	t.Helper()
	i := 0
	return func() float64 {
		if i >= len(vals) {
			t.Fatalf("rand01 called %d times, only %d values injected", i+1, len(vals))
		}
		v := vals[i]
		i++
		return v
	}
}

func TestDelayDeterministicUnderInjectedRand(t *testing.T) {
	p := Policy{InitialDelay: 100 * time.Millisecond, MaxDelay: 2 * time.Second, Multiplier: 2, Jitter: 0.2}
	// rand01 = 0.5 means jitter factor exactly 1.0: pure exponential.
	mid := func() float64 { return 0.5 }
	want := []time.Duration{
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		1600 * time.Millisecond,
		2 * time.Second, // capped
		2 * time.Second,
	}
	for attempt, w := range want {
		if got := p.Delay(attempt, mid); got != w {
			t.Errorf("Delay(%d) = %v, want %v", attempt, got, w)
		}
	}
	// Jitter edges: rand01 = 0 → ×0.8, rand01 → 1 → ×1.2.
	if got := p.Delay(0, func() float64 { return 0 }); got != 80*time.Millisecond {
		t.Errorf("low-jitter Delay(0) = %v, want 80ms", got)
	}
	if got := p.Delay(0, func() float64 { return 1 }); got != 120*time.Millisecond {
		t.Errorf("high-jitter Delay(0) = %v, want 120ms", got)
	}
	// Two identical injected sequences produce identical schedules.
	a := seq(t, 0.1, 0.9, 0.4)
	b := seq(t, 0.1, 0.9, 0.4)
	for attempt := 0; attempt < 3; attempt++ {
		if da, db := p.Delay(attempt, a), p.Delay(attempt, b); da != db {
			t.Errorf("attempt %d: schedules diverged: %v vs %v", attempt, da, db)
		}
	}
}

func TestDelayNoJitterNeedsNoRand(t *testing.T) {
	p := Policy{InitialDelay: 50 * time.Millisecond, MaxDelay: time.Second, Multiplier: 3, Jitter: 0}
	// nil rand01 must not be consulted when jitter is off.
	if got := p.Delay(2, nil); got != 450*time.Millisecond {
		t.Errorf("Delay(2) = %v, want 450ms", got)
	}
}

func TestZeroPolicyUsesDefaults(t *testing.T) {
	var p Policy
	if got := p.Delay(0, func() float64 { return 0.5 }); got != DefaultPolicy.InitialDelay {
		t.Errorf("zero policy Delay(0) = %v, want %v", got, DefaultPolicy.InitialDelay)
	}
}

func TestDoRetriesUntilSuccess(t *testing.T) {
	p := Policy{InitialDelay: time.Microsecond, MaxDelay: time.Millisecond, Multiplier: 2, Jitter: 0}
	calls := 0
	err := Do(context.Background(), p, nil, func(context.Context) error {
		calls++
		if calls < 4 {
			return fmt.Errorf("transient %d", calls)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do = %v, want nil", err)
	}
	if calls != 4 {
		t.Errorf("calls = %d, want 4", calls)
	}
}

func TestDoStopsOnPermanent(t *testing.T) {
	p := Policy{InitialDelay: time.Microsecond, Jitter: 0}
	calls := 0
	base := errors.New("bad request")
	err := Do(context.Background(), p, nil, func(context.Context) error {
		calls++
		return Permanent(fmt.Errorf("wrapping: %w", base))
	})
	if calls != 1 {
		t.Errorf("calls = %d, want 1 (permanent must not retry)", calls)
	}
	if !errors.Is(err, base) {
		t.Errorf("err = %v, want wrapped base error", err)
	}
}

func TestDoMaxAttempts(t *testing.T) {
	p := Policy{InitialDelay: time.Microsecond, Jitter: 0, MaxAttempts: 3}
	calls := 0
	sentinel := errors.New("always failing")
	err := Do(context.Background(), p, nil, func(context.Context) error {
		calls++
		return sentinel
	})
	if calls != 3 {
		t.Errorf("calls = %d, want 3", calls)
	}
	if !errors.Is(err, sentinel) {
		t.Errorf("err = %v, want sentinel", err)
	}
}

func TestDoHonorsContextCancellation(t *testing.T) {
	p := Policy{InitialDelay: time.Hour, Jitter: 0} // would sleep forever
	ctx, cancel := context.WithCancel(context.Background())
	sentinel := errors.New("transient")
	attempted := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		first := true
		done <- Do(ctx, p, nil, func(context.Context) error {
			if first {
				first = false
				close(attempted)
			}
			return sentinel
		})
	}()
	<-attempted // cancel only once the first attempt has failed
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, sentinel) {
			t.Errorf("err = %v, want last attempt error", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Do did not return after context cancellation")
	}
}

func TestDoRaisesDelayToAfterHint(t *testing.T) {
	p := Policy{InitialDelay: time.Microsecond, Jitter: 0, MaxAttempts: 2}
	start := time.Now()
	hint := 50 * time.Millisecond
	Do(context.Background(), p, nil, func(context.Context) error {
		return WithAfter(errors.New("queue full"), hint)
	})
	if elapsed := time.Since(start); elapsed < hint {
		t.Errorf("Do slept %v, want ≥ %v (Retry-After hint)", elapsed, hint)
	}
}

func TestParseRetryAfter(t *testing.T) {
	if d, ok := ParseRetryAfter("3"); !ok || d != 3*time.Second {
		t.Errorf("ParseRetryAfter(3) = %v, %v", d, ok)
	}
	if _, ok := ParseRetryAfter(""); ok {
		t.Error("empty header parsed")
	}
	if _, ok := ParseRetryAfter("-1"); ok {
		t.Error("negative seconds parsed")
	}
	if _, ok := ParseRetryAfter("soon"); ok {
		t.Error("garbage parsed")
	}
	future := time.Now().Add(90 * time.Second).UTC().Format(http.TimeFormat)
	if d, ok := ParseRetryAfter(future); !ok || d < 80*time.Second || d > 91*time.Second {
		t.Errorf("ParseRetryAfter(http-date) = %v, %v", d, ok)
	}
	past := time.Now().Add(-time.Hour).UTC().Format(http.TimeFormat)
	if d, ok := ParseRetryAfter(past); !ok || d != 0 {
		t.Errorf("ParseRetryAfter(past date) = %v, %v, want 0, true", d, ok)
	}
	if Permanent(nil) != nil || WithAfter(nil, time.Second) != nil {
		t.Error("nil error wrappers must stay nil")
	}
}
