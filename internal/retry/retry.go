// Package retry is the repo's one implementation of retry with
// exponential backoff and jitter. Both halves of the daemon's
// backpressure story share it: clients of radiomisd's 429/Retry-After
// responses (the cluster client fanning shards out to workers, scripts,
// future SDKs) compute their sleep schedule here, and servers use
// RetryAfter/ParseRetryAfter to speak the same header dialect.
//
// The package is deliberately deterministic under test: every jittered
// decision flows through an injectable rand01 source, so unit tests pin
// the exact delay sequence a policy produces.
package retry

import (
	"context"
	"errors"
	"math/rand"
	"net/http"
	"strconv"
	"time"
)

// Policy describes an exponential-backoff schedule with multiplicative
// jitter. The zero value is usable and means DefaultPolicy.
type Policy struct {
	// InitialDelay is the base delay before the first retry (default 100ms).
	InitialDelay time.Duration
	// MaxDelay caps the exponential growth (default 5s).
	MaxDelay time.Duration
	// Multiplier is the per-attempt growth factor (default 2).
	Multiplier float64
	// Jitter is the relative jitter width: each delay is scaled by a
	// uniform factor in [1-Jitter, 1+Jitter] (default 0.2; 0 disables,
	// negative also disables).
	Jitter float64
	// MaxAttempts bounds the total number of attempts, including the
	// first (default 0 = unbounded; the context bounds the loop instead).
	MaxAttempts int
}

// DefaultPolicy is the schedule used where the caller does not care:
// 100ms growing 2x to a 5s ceiling with ±20% jitter, unbounded attempts.
var DefaultPolicy = Policy{
	InitialDelay: 100 * time.Millisecond,
	MaxDelay:     5 * time.Second,
	Multiplier:   2,
	Jitter:       0.2,
}

func (p Policy) withDefaults() Policy {
	if p.InitialDelay <= 0 {
		p.InitialDelay = DefaultPolicy.InitialDelay
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = DefaultPolicy.MaxDelay
	}
	if p.Multiplier < 1 {
		p.Multiplier = DefaultPolicy.Multiplier
	}
	return p
}

// Delay returns the jittered backoff before retry number attempt
// (attempt 0 is the delay after the first failure). rand01 supplies
// uniform values in [0, 1); nil uses the global math/rand source. Delay
// is pure given (p, attempt, rand01 outputs), so injected sources make
// schedules fully deterministic.
func (p Policy) Delay(attempt int, rand01 func() float64) time.Duration {
	p = p.withDefaults()
	d := float64(p.InitialDelay)
	for i := 0; i < attempt; i++ {
		d *= p.Multiplier
		if d >= float64(p.MaxDelay) {
			d = float64(p.MaxDelay)
			break
		}
	}
	if d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	if p.Jitter > 0 {
		if rand01 == nil {
			rand01 = rand.Float64
		}
		d *= 1 - p.Jitter + 2*p.Jitter*rand01()
	}
	return time.Duration(d)
}

// permanent wraps an error to mark it non-retryable.
type permanent struct{ err error }

func (p *permanent) Error() string { return p.err.Error() }
func (p *permanent) Unwrap() error { return p.err }

// Permanent marks err as non-retryable: Do stops immediately and returns
// the wrapped error. A nil err stays nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanent{err: err}
}

// afterHint wraps an error with a server-provided earliest-retry delay
// (an HTTP Retry-After, a queue-full hint). Do sleeps at least that long
// before the next attempt, instead of only the computed backoff.
type afterHint struct {
	err   error
	delay time.Duration
}

func (a *afterHint) Error() string { return a.err.Error() }
func (a *afterHint) Unwrap() error { return a.err }

// WithAfter attaches a server-provided minimum delay hint to a retryable
// error. A nil err stays nil.
func WithAfter(err error, delay time.Duration) error {
	if err == nil {
		return nil
	}
	return &afterHint{err: err, delay: delay}
}

// ParseRetryAfter parses an HTTP Retry-After header value: either a
// non-negative integer number of seconds or an HTTP date. It reports
// false for absent or malformed values.
func ParseRetryAfter(h string) (time.Duration, bool) {
	if h == "" {
		return 0, false
	}
	if secs, err := strconv.Atoi(h); err == nil {
		if secs < 0 {
			return 0, false
		}
		return time.Duration(secs) * time.Second, true
	}
	if t, err := http.ParseTime(h); err == nil {
		d := time.Until(t)
		if d < 0 {
			d = 0
		}
		return d, true
	}
	return 0, false
}

// Do runs op until it succeeds, returns a Permanent error, exhausts
// p.MaxAttempts, or ctx is done. Between attempts it sleeps the policy's
// jittered backoff, raised to any WithAfter hint on the last error.
// rand01 supplies jitter randomness (nil = global math/rand). The
// returned error is the last attempt's (unwrapped of retry markers),
// or ctx.Err() when the context ended the loop.
func Do(ctx context.Context, p Policy, rand01 func() float64, op func(ctx context.Context) error) error {
	p = p.withDefaults()
	var lastErr error
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			if lastErr != nil {
				return lastErr
			}
			return err
		}
		err := op(ctx)
		if err == nil {
			return nil
		}
		var perm *permanent
		if errors.As(err, &perm) {
			return perm.err
		}
		lastErr = err
		if p.MaxAttempts > 0 && attempt+1 >= p.MaxAttempts {
			return lastErr
		}
		delay := p.Delay(attempt, rand01)
		var hint *afterHint
		if errors.As(err, &hint) && hint.delay > delay {
			delay = hint.delay
		}
		timer := time.NewTimer(delay)
		select {
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			return lastErr
		}
	}
}
