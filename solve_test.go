package radiomis_test

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"radiomis"
)

// solveFacades pairs every per-algorithm convenience with its registry
// name, for the Solve-equivalence sweep.
var solveFacades = []struct {
	algo string
	fn   func(*radiomis.Graph, radiomis.Params, uint64) (*radiomis.Result, error)
}{
	{"cd", radiomis.SolveCD},
	{"beep", radiomis.SolveBeep},
	{"nocd", radiomis.SolveNoCD},
	{"lowdegree", radiomis.SolveLowDegree},
	{"naive-cd", radiomis.SolveNaiveCD},
	{"naive-nocd", radiomis.SolveNaiveNoCD},
	{"unknown-delta", radiomis.SolveUnknownDelta},
}

// TestSolveMatchesFacades pins the unified-API contract: every Solve*
// convenience is bit-for-bit identical to Solve with the corresponding
// Spec at the same (graph, params, seed).
func TestSolveMatchesFacades(t *testing.T) {
	g := radiomis.GNP(96, 6.0/96, 11)
	p := radiomis.DefaultParams(g.N(), g.MaxDegree())
	for _, tc := range solveFacades {
		t.Run(tc.algo, func(t *testing.T) {
			want, err := tc.fn(g, p, 42)
			if err != nil {
				t.Fatalf("Solve%s: %v", tc.algo, err)
			}
			got, err := radiomis.Solve(g, radiomis.Spec{Algorithm: tc.algo, Params: p, Seed: 42})
			if err != nil {
				t.Fatalf("Solve: %v", err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("Solve(%q) diverges from its facade at the same seed", tc.algo)
			}
			if err := got.Check(g); err != nil {
				t.Errorf("Check: %v", err)
			}
		})
	}
}

// TestSolveManyMatchesSolve pins the batch-API contract at the facade:
// SolveMany over TrialSeed-derived seeds returns, trial for trial, the
// bit-identical result of single-trial Solve calls — on both engines —
// and LockstepCapable agrees with the per-algorithm capability flags.
func TestSolveManyMatchesSolve(t *testing.T) {
	g := radiomis.GNP(96, 6.0/96, 11)
	p := radiomis.DefaultParams(g.N(), g.MaxDegree())
	seeds := make([]uint64, 67) // crosses the 64-lane group boundary
	for i := range seeds {
		seeds[i] = radiomis.TrialSeed(42, uint64(i))
	}
	for _, algo := range []string{"cd", "nocd"} { // lockstep-capable and not
		for _, engine := range []string{radiomis.EngineAuto, radiomis.EngineScalar} {
			results, err := radiomis.SolveMany(g, radiomis.ManySpec{
				Spec:   radiomis.Spec{Algorithm: algo, Params: p},
				Seeds:  seeds,
				Engine: engine,
			})
			if err != nil {
				t.Fatalf("SolveMany(%s, %q): %v", algo, engine, err)
			}
			if len(results) != len(seeds) {
				t.Fatalf("SolveMany(%s, %q): %d results, want %d", algo, engine, len(results), len(seeds))
			}
			for _, i := range []int{0, 63, 64, 66} {
				want, err := radiomis.Solve(g, radiomis.Spec{Algorithm: algo, Params: p, Seed: seeds[i]})
				if err != nil {
					t.Fatalf("Solve: %v", err)
				}
				if !reflect.DeepEqual(results[i], want) {
					t.Errorf("SolveMany(%s, %q) trial %d diverges from Solve at the same seed", algo, engine, i)
				}
			}
		}
	}
	if !radiomis.LockstepCapable("cd") || radiomis.LockstepCapable("nocd") {
		t.Error("LockstepCapable: want cd capable, nocd not")
	}
	if _, err := radiomis.SolveMany(g, radiomis.ManySpec{
		Spec: radiomis.Spec{Algorithm: "nocd", Params: p}, Seeds: seeds[:1], Engine: radiomis.EngineLockstep,
	}); err == nil {
		t.Error("forced lockstep on a lane-less algorithm succeeded")
	}
}

// TestSolveUnknownAlgorithm checks the discovery affordance: the error for
// a bad name lists every registered algorithm.
func TestSolveUnknownAlgorithm(t *testing.T) {
	g := radiomis.Complete(4)
	p := radiomis.DefaultParams(4, 3)
	_, err := radiomis.Solve(g, radiomis.Spec{Algorithm: "quantum", Params: p})
	if err == nil {
		t.Fatal("Solve accepted unknown algorithm")
	}
	for _, name := range radiomis.Algorithms() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not mention registered algorithm %q", err, name)
		}
	}
}

// TestSolveSpecKnobs exercises the optional Spec fields: a cancelled
// context aborts, a fault profile changes the run and populates fault
// stats, and the registry listing matches the algorithm infos.
func TestSolveSpecKnobs(t *testing.T) {
	g := radiomis.GNP(64, 6.0/64, 3)
	p := radiomis.DefaultParams(g.N(), g.MaxDegree())

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := radiomis.Solve(g, radiomis.Spec{Algorithm: "cd", Params: p, Ctx: ctx}); err == nil {
		t.Error("Solve with cancelled context succeeded")
	}

	faulty, err := radiomis.Solve(g, radiomis.Spec{
		Algorithm: "cd", Params: p, Seed: 7,
		Faults: radiomis.FaultProfile{Loss: 0.2},
	})
	if err != nil {
		t.Fatalf("faulty Solve: %v", err)
	}
	if faulty.Faults == nil || faulty.Faults.Lost == 0 {
		t.Error("fault profile produced no loss events")
	}

	infos := radiomis.AlgorithmInfos()
	names := radiomis.Algorithms()
	if len(infos) != len(names) {
		t.Fatalf("AlgorithmInfos has %d entries, Algorithms %d", len(infos), len(names))
	}
	for i, info := range infos {
		if info.Name != names[i] {
			t.Errorf("infos[%d].Name = %q, want %q", i, info.Name, names[i])
		}
		if info.Model == "" || info.Description == "" {
			t.Errorf("algorithm %q missing model or description", info.Name)
		}
	}
	if len(radiomis.ParamKnobs()) == 0 {
		t.Error("ParamKnobs is empty")
	}
}
