package radiomis

// Benchmarks, one per reproduction experiment (see DESIGN.md's
// per-experiment index) plus micro-benchmarks of the substrates. Each
// solver benchmark reports the paper's quantities — worst-case energy and
// rounds — alongside wall-clock time, so `go test -bench=. -benchmem`
// regenerates the headline numbers of every experiment:
//
//	E1 → BenchmarkLowerBound        E2 → BenchmarkCD
//	E3 → BenchmarkResidual          E4 → BenchmarkBackoff
//	E5 → BenchmarkNoCD              E6 → BenchmarkComparison*
//	E7 → BenchmarkCommitDegree      E8 → BenchmarkBeeping
//	E9 → BenchmarkUnknownDelta      E11 → BenchmarkCongestLuby
//	E12 → BenchmarkBackbone
//
// (E10's ablations and E13's constant sweeps are table-shaped; run them
// via `go run ./cmd/benchsuite -e E10,E13`.)

import (
	"fmt"
	"testing"

	"radiomis/internal/backbone"
	"radiomis/internal/backoff"
	"radiomis/internal/congest"
	"radiomis/internal/graph"
	"radiomis/internal/lowerbound"
	"radiomis/internal/mis"
	"radiomis/internal/radio"
	"radiomis/internal/rng"
)

// benchSolve runs a solver repeatedly on the given family/size and reports
// energy and round metrics.
func benchSolve(b *testing.B, fam graph.Family, n int, solve func(*graph.Graph, mis.Params, uint64) (*mis.Result, error)) {
	b.Helper()
	g := graph.Generate(fam, n, rng.New(uint64(n)))
	p := mis.ParamsDefault(g.N(), g.MaxDegree())
	var maxE, rounds, failures uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := solve(g, p, uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		if res.MaxEnergy() > maxE {
			maxE = res.MaxEnergy()
		}
		rounds += res.Rounds
		if res.Check(g) != nil {
			failures++
		}
	}
	b.ReportMetric(float64(maxE), "maxEnergy")
	b.ReportMetric(float64(rounds)/float64(b.N), "rounds/op")
	b.ReportMetric(float64(failures), "failures")
}

// BenchmarkCD regenerates experiment E2 (Theorem 2): Algorithm 1's energy
// and rounds across network sizes.
func BenchmarkCD(b *testing.B) {
	for _, n := range []int{256, 1024, 4096, 16384} {
		b.Run(fmt.Sprintf("gnp/n=%d", n), func(b *testing.B) {
			benchSolve(b, graph.FamilyGNP, n, mis.SolveCD)
		})
	}
	b.Run("clique/n=512", func(b *testing.B) {
		benchSolve(b, graph.FamilyClique, 512, mis.SolveCD)
	})
}

// BenchmarkBeeping regenerates experiment E8 (§3.1): Algorithm 1 in the
// beeping model.
func BenchmarkBeeping(b *testing.B) {
	for _, n := range []int{256, 1024} {
		b.Run(fmt.Sprintf("grid/n=%d", n), func(b *testing.B) {
			benchSolve(b, graph.FamilyGrid, n, mis.SolveBeep)
		})
	}
}

// BenchmarkNoCD regenerates experiment E5 (Theorem 10): Algorithm 2's
// energy and rounds across network sizes.
func BenchmarkNoCD(b *testing.B) {
	for _, n := range []int{64, 128, 256} {
		b.Run(fmt.Sprintf("gnp/n=%d", n), func(b *testing.B) {
			benchSolve(b, graph.FamilyGNP, n, mis.SolveNoCD)
		})
	}
}

// BenchmarkComparisonCD regenerates the CD half of experiment E6: the
// naive Luby baseline on the same workloads as BenchmarkCD.
func BenchmarkComparisonCD(b *testing.B) {
	for _, n := range []int{256, 1024, 4096} {
		b.Run(fmt.Sprintf("naive-luby/n=%d", n), func(b *testing.B) {
			benchSolve(b, graph.FamilyGNP, n, mis.SolveNaiveCD)
		})
	}
}

// BenchmarkComparisonNoCD regenerates the no-CD half of experiment E6:
// the Davies-style baseline and the naive simulation.
func BenchmarkComparisonNoCD(b *testing.B) {
	for _, n := range []int{64, 128, 256} {
		b.Run(fmt.Sprintf("davies/n=%d", n), func(b *testing.B) {
			benchSolve(b, graph.FamilyGNP, n, mis.SolveLowDegree)
		})
	}
	for _, n := range []int{64, 128} {
		b.Run(fmt.Sprintf("naive-sim/n=%d", n), func(b *testing.B) {
			benchSolve(b, graph.FamilyGNP, n, mis.SolveNaiveNoCD)
		})
	}
}

// BenchmarkUnknownDelta regenerates experiment E9 (§1.1): the unknown-Δ
// wrapper's overhead.
func BenchmarkUnknownDelta(b *testing.B) {
	for _, n := range []int{48, 96} {
		b.Run(fmt.Sprintf("gnp/n=%d", n), func(b *testing.B) {
			benchSolve(b, graph.FamilyGNP, n, mis.SolveUnknownDelta)
		})
	}
}

// BenchmarkLowerBound regenerates experiment E1 (Theorem 1): failure
// probability of budgeted strategies at, below, and above the ½·log₂ n
// threshold.
func BenchmarkLowerBound(b *testing.B) {
	for _, budget := range []int{2, 5, 20} {
		b.Run(fmt.Sprintf("oblivious/n=1024/b=%d", budget), func(b *testing.B) {
			var failSum float64
			for i := 0; i < b.N; i++ {
				p, err := lowerbound.FailureProbOblivious(lowerbound.Config{
					N: 1024, Budget: budget, Trials: 20, Seed: uint64(i),
				})
				if err != nil {
					b.Fatal(err)
				}
				failSum += p
			}
			b.ReportMetric(failSum/float64(b.N), "failureProb")
		})
	}
}

// BenchmarkResidual regenerates experiment E3 (Lemma 5): per-phase
// residual-edge shrinkage of the classical Luby reference.
func BenchmarkResidual(b *testing.B) {
	r := rng.New(3)
	g := graph.GNP(512, 8.0/512, r)
	b.ResetTimer()
	var phases int
	for i := 0; i < b.N; i++ {
		_, stats := graph.LubySequential(g, rng.New(uint64(i)))
		phases = len(stats)
	}
	b.ReportMetric(float64(phases), "phases")
}

// BenchmarkCommitDegree regenerates experiment E7 (Corollary 13): the
// committed subgraph's maximum degree after one competition.
func BenchmarkCommitDegree(b *testing.B) {
	g := graph.GNP(512, 8.0/512, rng.New(4))
	p := mis.ParamsDefault(g.N(), g.MaxDegree())
	b.ResetTimer()
	var worst int
	for i := 0; i < b.N; i++ {
		deg, _, err := mis.CommittedSubgraphMaxDegree(g, p, uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		if deg > worst {
			worst = deg
		}
	}
	b.ReportMetric(float64(worst), "maxCommitDegree")
	b.ReportMetric(float64(p.CommitDegree()), "bound")
}

// BenchmarkBackoff regenerates experiment E4 (Lemmas 8–9): one full
// Rec-EBackoff under contention.
func BenchmarkBackoff(b *testing.B) {
	for _, senders := range []int{1, 16, 64} {
		b.Run(fmt.Sprintf("senders=%d", senders), func(b *testing.B) {
			g := graph.Star(senders + 1)
			var heardCount int
			for i := 0; i < b.N; i++ {
				rr, err := radio.Run(g, radio.Config{Model: radio.ModelNoCD, Seed: uint64(i)},
					func(env *radio.Env) int64 {
						if env.ID() == 0 {
							if backoff.Receive(env, 16, 64, 0) {
								return 1
							}
							return 0
						}
						backoff.Send(env, 16, 64, 1)
						return 0
					})
				if err != nil {
					b.Fatal(err)
				}
				heardCount += int(rr.Outputs[0])
			}
			b.ReportMetric(float64(heardCount)/float64(b.N), "hearRate")
		})
	}
}

// BenchmarkEngine measures the simulator's raw throughput: awake
// node-rounds per second on a dense graph with every node active.
func BenchmarkEngine(b *testing.B) {
	g := graph.Complete(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := radio.Run(g, radio.Config{Model: radio.ModelCD, Seed: uint64(i)},
			func(env *radio.Env) int64 {
				for r := 0; r < 100; r++ {
					if env.Rand().Int63()&1 == 1 {
						env.TransmitBit()
					} else {
						env.Listen()
					}
				}
				return 0
			})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(64*100), "nodeRounds/op")
}

// BenchmarkGraphGen measures generator throughput (substrate sanity).
func BenchmarkGraphGen(b *testing.B) {
	b.Run("gnp/n=4096", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			graph.GNP(4096, 8.0/4096, rng.New(uint64(i)))
		}
	})
	b.Run("unitdisk/n=4096", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			graph.UnitDisk(4096, 0.03, rng.New(uint64(i)))
		}
	})
}

// BenchmarkBackbone regenerates experiment E12: the full application
// pipeline — MIS, CDS construction, TDMA coloring, and one broadcast.
func BenchmarkBackbone(b *testing.B) {
	for _, side := range []int{8, 16} {
		b.Run(fmt.Sprintf("grid/%dx%d", side, side), func(b *testing.B) {
			g := graph.Grid2D(side, side)
			p := mis.ParamsDefault(g.N(), g.MaxDegree())
			var saving float64
			for i := 0; i < b.N; i++ {
				misRun, err := mis.SolveCD(g, p, uint64(i))
				if err != nil {
					b.Fatal(err)
				}
				bb, err := backbone.Build(g, misRun.InMIS)
				if err != nil {
					b.Fatal(err)
				}
				c := backbone.ColorBackbone(g, bb)
				bc, err := backbone.Broadcast(g, bb, c, 0, 1, 0, uint64(i))
				if err != nil {
					b.Fatal(err)
				}
				nf, err := backbone.NaiveFlood(g, 0, 1, 0, uint64(i))
				if err != nil {
					b.Fatal(err)
				}
				if bc.AvgEnergy() > 0 {
					saving = nf.AvgEnergy() / bc.AvgEnergy()
				}
			}
			b.ReportMetric(saving, "energySaving")
		})
	}
}

// BenchmarkSolveBatch measures the batch-scheduling serving path on the
// many-small-graphs workload it exists for: thousands of conflict graphs
// peeled into execution batches per second. The "planner" variant is the
// amortized path and must show 0 allocs/op once warm — the contract
// scripts/benchallocs.py guards in CI; "oneshot" is the per-call
// convenience entry point, allocating its caller-owned plan.
func BenchmarkSolveBatch(b *testing.B) {
	const nGraphs = 64
	for _, n := range []int{64, 256} {
		graphs := make([]*graph.Graph, nGraphs)
		for i := range graphs {
			graphs[i] = graph.GNP(n, 8.0/float64(n), rng.New(uint64(i+1)))
		}
		stat := func(b *testing.B, plan *BatchPlan, batches *int) {
			s := plan.Stats()
			*batches += s.Batches
			if s.Vertices != n {
				b.Fatalf("plan covers %d vertices, want %d", s.Vertices, n)
			}
		}

		b.Run(fmt.Sprintf("planner/n=%d", n), func(b *testing.B) {
			pl := NewBatchPlanner()
			defer pl.Close()
			var batches int
			for _, g := range graphs { // warm every buffer before timing
				if _, err := pl.Batches(g, BatchOptions{Seed: 7}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				plan, err := pl.Batches(graphs[i%nGraphs], BatchOptions{Seed: 7})
				if err != nil {
					b.Fatal(err)
				}
				stat(b, plan, &batches)
			}
			b.ReportMetric(float64(batches)/float64(b.N), "batches/op")
		})

		b.Run(fmt.Sprintf("oneshot/n=%d", n), func(b *testing.B) {
			var batches int
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				plan, err := SolveBatch(graphs[i%nGraphs], BatchOptions{Seed: 7})
				if err != nil {
					b.Fatal(err)
				}
				stat(b, plan, &batches)
			}
			b.ReportMetric(float64(batches)/float64(b.N), "batches/op")
		})
	}
}

// BenchmarkCongestLuby regenerates experiment E11's CONGEST row.
func BenchmarkCongestLuby(b *testing.B) {
	for _, n := range []int{256, 4096} {
		b.Run(fmt.Sprintf("gnp/n=%d", n), func(b *testing.B) {
			g := graph.Generate(graph.FamilyGNP, n, rng.New(uint64(n)))
			var worst uint64
			var avg float64
			for i := 0; i < b.N; i++ {
				res, err := congest.SolveLuby(g, uint64(i))
				if err != nil {
					b.Fatal(err)
				}
				if res.MaxAwake() > worst {
					worst = res.MaxAwake()
				}
				avg = res.AvgAwake()
			}
			b.ReportMetric(float64(worst), "maxAwake")
			b.ReportMetric(avg, "avgAwake")
		})
	}
}
