// Command energytrace renders the awake schedule of a small MIS run as an
// ASCII timeline — one row per node, one column per round — making the
// sleeping energy model visible: `T` transmit, `L` listen, `.` sleep,
// `*` the round the node halted. The energy complexity of a node is simply
// the number of non-dot cells in its row.
//
// Usage:
//
//	energytrace -n 12 -graph cycle -algo cd
//	energytrace -n 16 -graph gnp -algo naive-cd   # compare: rows fill up
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"radiomis/internal/graph"
	"radiomis/internal/mis"
	"radiomis/internal/radio"
	"radiomis/internal/rng"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "energytrace:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("energytrace", flag.ContinueOnError)
	var (
		n      = fs.Int("n", 12, "number of nodes (keep small; one column per round)")
		family = fs.String("graph", "cycle", "graph family")
		algo   = fs.String("algo", "cd", "algorithm: cd|beep|naive-cd")
		seed   = fs.Uint64("seed", 1, "random seed")
		width  = fs.Int("width", 120, "maximum rounds to render")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	fam, err := graph.ParseFamily(*family)
	if err != nil {
		return err
	}
	g := graph.Generate(fam, *n, rng.New(*seed))
	p := mis.ParamsDefault(g.N(), g.MaxDegree())

	var program radio.Program
	model := radio.ModelCD
	switch *algo {
	case "cd":
		program = mis.CDProgram(p)
	case "beep":
		program = mis.CDProgram(p)
		model = radio.ModelBeep
	case "naive-cd":
		program = mis.NaiveCDProgram(p)
	default:
		return fmt.Errorf("unknown algorithm %q (timeline rendering supports cd, beep, naive-cd)", *algo)
	}

	rec := &radio.RecordingTracer{}
	rr, err := radio.Run(g, radio.Config{Model: model, Seed: *seed, Tracer: rec}, program)
	if err != nil {
		return err
	}

	rounds := int(rr.Rounds)
	if rounds > *width {
		rounds = *width
	}
	rows := make([][]byte, g.N())
	for v := range rows {
		rows[v] = []byte(strings.Repeat(".", rounds))
	}
	for _, ev := range rec.Events {
		if ev.Round >= uint64(rounds) {
			continue
		}
		for _, v := range ev.Transmitters {
			rows[v][ev.Round] = 'T'
		}
		for _, v := range ev.Listeners {
			rows[v][ev.Round] = 'L'
		}
	}
	for v, r := range rec.HaltRound {
		if r < uint64(rounds) && rows[v][r] == '.' {
			rows[v][r] = '*'
		}
	}

	fmt.Printf("%s  algo=%s model=%s seed=%d\n", g, *algo, model, *seed)
	fmt.Printf("T=transmit L=listen .=sleep *=halt   (%d of %d rounds shown)\n\n", rounds, rr.Rounds)
	for v, row := range rows {
		status := mis.Status(rr.Outputs[v])
		fmt.Printf("node %3d %-9s E=%-4d |%s|\n", v, status, rr.Energy[v], row)
	}
	fmt.Printf("\nmax energy %d, avg %.1f, rounds %d\n",
		maxOf(rr.Energy), avg(rr.Energy), rr.Rounds)
	inSet := make([]bool, g.N())
	for v, out := range rr.Outputs {
		inSet[v] = mis.Status(out) == mis.StatusInMIS
	}
	if err := graph.CheckMIS(g, inSet); err != nil {
		fmt.Printf("result: INVALID (%v)\n", err)
	} else {
		fmt.Printf("result: valid MIS of size %d\n", graph.SetSize(inSet))
	}
	return nil
}

func maxOf(xs []uint64) uint64 {
	var m uint64
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

func avg(xs []uint64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s uint64
	for _, x := range xs {
		s += x
	}
	return float64(s) / float64(len(xs))
}
