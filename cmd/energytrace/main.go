// Command energytrace renders the awake schedule of a small MIS run as an
// ASCII timeline — one row per node, one column per round — making the
// sleeping energy model visible: `T` transmit, `L` listen, `.` sleep,
// `*` the round the node halted. The energy complexity of a node is simply
// the number of non-dot cells in its row.
//
// Beyond the timeline, the observability flags expose the structured view
// of the same run:
//
//   - -phases prints the per-phase energy/collision breakdown (where each
//     algorithm phase spends its awake rounds) plus the reception-outcome
//     totals;
//   - -jsonl FILE streams every round and halt as JSON Lines;
//   - -chrome FILE writes a Chrome trace-event file for chrome://tracing
//     or https://ui.perfetto.dev.
//
// Usage:
//
//	energytrace -n 12 -graph cycle -algo cd
//	energytrace -n 16 -graph gnp -algo naive-cd   # compare: rows fill up
//	energytrace -n 24 -graph gnp -algo nocd -phases -width 0
//	energytrace -n 12 -graph cycle -algo cd -chrome trace.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"radiomis/internal/graph"
	"radiomis/internal/mis"
	"radiomis/internal/obs"
	"radiomis/internal/radio"
	"radiomis/internal/rng"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "energytrace:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("energytrace", flag.ContinueOnError)
	var (
		n          = fs.Int("n", 12, "number of nodes (keep small; one column per round)")
		family     = fs.String("graph", "cycle", "graph family")
		algo       = fs.String("algo", "cd", "algorithm: cd|beep|naive-cd|nocd")
		seed       = fs.Uint64("seed", 1, "random seed")
		width      = fs.Int("width", 120, "maximum rounds to render (0 disables the timeline)")
		phases     = fs.Bool("phases", false, "print the per-phase energy and collision breakdown")
		jsonlPath  = fs.String("jsonl", "", "write a JSON Lines event stream to this file")
		chromePath = fs.String("chrome", "", "write a Chrome trace-event file to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	fam, err := graph.ParseFamily(*family)
	if err != nil {
		return err
	}
	g := graph.Generate(fam, *n, rng.New(*seed))
	p := mis.ParamsDefault(g.N(), g.MaxDegree())

	program, model, unaryOnly, err := selectAlgo(*algo, p)
	if err != nil {
		return err
	}

	// Assemble the observer chain: the timeline still uses the legacy
	// RecordingTracer; breakdowns and exporters attach as Observers.
	var observers radio.MultiObserver
	var breakdown *obs.PhaseBreakdown
	var counter *obs.Counter
	if *phases {
		breakdown = obs.NewPhaseBreakdown(g.N())
		counter = &obs.Counter{}
		observers = append(observers, breakdown, counter)
	}
	var jw *obs.JSONLWriter
	if *jsonlPath != "" {
		f, err := os.Create(*jsonlPath)
		if err != nil {
			return err
		}
		defer f.Close()
		jw = obs.NewJSONLWriter(f)
		observers = append(observers, jw)
	}
	var ct *obs.ChromeTracer
	if *chromePath != "" {
		f, err := os.Create(*chromePath)
		if err != nil {
			return err
		}
		defer f.Close()
		ct = obs.NewChromeTracer(f)
		observers = append(observers, ct)
	}

	rec := &radio.RecordingTracer{}
	cfg := radio.Config{Model: model, Seed: *seed, UnaryOnly: unaryOnly, Tracer: rec}
	if len(observers) > 0 {
		cfg.Observer = observers
	}
	rr, err := radio.Run(g, cfg, program)
	if err != nil {
		return err
	}
	if jw != nil {
		if err := jw.Flush(); err != nil {
			return fmt.Errorf("jsonl export: %w", err)
		}
	}
	if ct != nil {
		if err := ct.Close(); err != nil {
			return fmt.Errorf("chrome export: %w", err)
		}
	}

	fmt.Fprintf(out, "%s  algo=%s model=%s seed=%d\n", g, *algo, model, *seed)
	if *width > 0 {
		renderTimeline(out, g, rec, rr, *width)
	}
	fmt.Fprintf(out, "\nmax energy %d, avg %.1f, rounds %d\n",
		maxOf(rr.Energy), avg(rr.Energy), rr.Rounds)
	inSet := make([]bool, g.N())
	for v, o := range rr.Outputs {
		inSet[v] = mis.Status(o) == mis.StatusInMIS
	}
	if err := graph.CheckMIS(g, inSet); err != nil {
		fmt.Fprintf(out, "result: INVALID (%v)\n", err)
	} else {
		fmt.Fprintf(out, "result: valid MIS of size %d\n", graph.SetSize(inSet))
	}

	if *phases {
		renderPhases(out, breakdown, counter)
	}
	if *jsonlPath != "" {
		fmt.Fprintf(out, "\njsonl event stream written to %s\n", *jsonlPath)
	}
	if *chromePath != "" {
		fmt.Fprintf(out, "chrome trace written to %s (open in chrome://tracing)\n", *chromePath)
	}
	return nil
}

// selectAlgo maps an -algo value to the program to run, the collision
// model, and whether the engine must enforce unary transmissions. The
// beeping model only carries "beep"/"no beep" (§3.1), so it runs with
// UnaryOnly set: a program that tried to transmit a multi-bit payload
// would fail instead of silently exceeding the model.
func selectAlgo(algo string, p mis.Params) (radio.Program, radio.Model, bool, error) {
	switch algo {
	case "cd":
		return mis.CDProgram(p), radio.ModelCD, false, nil
	case "beep":
		return mis.CDProgram(p), radio.ModelBeep, true, nil
	case "naive-cd":
		return mis.NaiveCDProgram(p), radio.ModelCD, false, nil
	case "nocd":
		return mis.NoCDProgram(p), radio.ModelNoCD, false, nil
	}
	return nil, 0, false, fmt.Errorf("unknown algorithm %q (supported: cd, beep, naive-cd, nocd)", algo)
}

func renderTimeline(out io.Writer, g *graph.Graph, rec *radio.RecordingTracer, rr *radio.Result, width int) {
	rounds := int(rr.Rounds)
	if rounds > width {
		rounds = width
	}
	rows := make([][]byte, g.N())
	for v := range rows {
		rows[v] = []byte(strings.Repeat(".", rounds))
	}
	for _, ev := range rec.Events {
		if ev.Round >= uint64(rounds) {
			continue
		}
		for _, v := range ev.Transmitters {
			rows[v][ev.Round] = 'T'
		}
		for _, v := range ev.Listeners {
			rows[v][ev.Round] = 'L'
		}
	}
	for v, r := range rec.HaltRound {
		if r < uint64(rounds) && rows[v][r] == '.' {
			rows[v][r] = '*'
		}
	}

	fmt.Fprintf(out, "T=transmit L=listen .=sleep *=halt   (%d of %d rounds shown)\n\n", rounds, rr.Rounds)
	for v, row := range rows {
		status := mis.Status(rr.Outputs[v])
		fmt.Fprintf(out, "node %3d %-9s E=%-4d |%s|\n", v, status, rr.Energy[v], row)
	}
}

// renderPhases prints where the run's energy went, phase by phase, plus the
// physical reception outcomes the engine observed.
func renderPhases(out io.Writer, b *obs.PhaseBreakdown, c *obs.Counter) {
	var total uint64
	for _, p := range b.Phases() {
		total += p.TotalAwake()
	}
	fmt.Fprintf(out, "\nphase breakdown (awake rounds by phase label; %d total):\n", total)
	fmt.Fprintf(out, "%-22s %10s %7s %10s %10s %10s\n",
		"phase", "awake", "share", "transmits", "listens", "collisions")
	for _, p := range b.Phases() {
		name := p.Name
		if name == "" {
			name = "(unlabeled)"
		}
		share := 0.0
		if total > 0 {
			share = float64(p.TotalAwake()) / float64(total)
		}
		fmt.Fprintf(out, "%-22s %10d %6.1f%% %10d %10d %10d\n",
			name, p.TotalAwake(), 100*share, p.TotalTransmits(), p.TotalListens(), p.TotalCollisions())
	}
	fmt.Fprintf(out, "\nreception outcomes over %d active rounds: %d successes, %d collisions, %d silent listens\n",
		c.Rounds, c.Successes, c.Collisions, c.Silences)
}

func maxOf(xs []uint64) uint64 {
	var m uint64
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

func avg(xs []uint64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s uint64
	for _, x := range xs {
		s += x
	}
	return float64(s) / float64(len(xs))
}
