package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"radiomis/internal/mis"
	"radiomis/internal/radio"
)

func TestRunTimeline(t *testing.T) {
	if err := run([]string{"-n", "8", "-graph", "cycle", "-algo", "cd", "-width", "60"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunNaive(t *testing.T) {
	if err := run([]string{"-n", "8", "-graph", "star", "-algo", "naive-cd"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-algo", "bogus"}, io.Discard); err == nil {
		t.Error("unsupported algo accepted")
	}
	if err := run([]string{"-graph", "bogus"}, io.Discard); err == nil {
		t.Error("unknown graph accepted")
	}
	if err := run([]string{"-bogus"}, io.Discard); err == nil {
		t.Error("bad flag accepted")
	}
}

// TestSelectAlgoBeepIsUnaryOnly pins the §3.1 contract: the beeping model
// carries only "beep"/"no beep", so -algo beep must run with the engine's
// unary-transmission enforcement on, and no other algo may.
func TestSelectAlgoBeepIsUnaryOnly(t *testing.T) {
	p := mis.ParamsDefault(8, 2)
	for _, tc := range []struct {
		algo      string
		model     radio.Model
		unaryOnly bool
	}{
		{"cd", radio.ModelCD, false},
		{"beep", radio.ModelBeep, true},
		{"naive-cd", radio.ModelCD, false},
		{"nocd", radio.ModelNoCD, false},
	} {
		prog, model, unaryOnly, err := selectAlgo(tc.algo, p)
		if err != nil {
			t.Fatalf("selectAlgo(%q): %v", tc.algo, err)
		}
		if prog == nil {
			t.Errorf("selectAlgo(%q): nil program", tc.algo)
		}
		if model != tc.model {
			t.Errorf("selectAlgo(%q): model = %v, want %v", tc.algo, model, tc.model)
		}
		if unaryOnly != tc.unaryOnly {
			t.Errorf("selectAlgo(%q): unaryOnly = %v, want %v", tc.algo, unaryOnly, tc.unaryOnly)
		}
	}
	if _, _, _, err := selectAlgo("bogus", p); err == nil {
		t.Error("selectAlgo accepted unknown algorithm")
	}
}

// TestRunBeep runs the beeping timeline end to end: with UnaryOnly set the
// run must still complete (Algorithm 1 is unary by construction) and
// report the beeping model.
func TestRunBeep(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-n", "8", "-graph", "cycle", "-algo", "beep"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "model=beep") {
		t.Errorf("output does not mention the beeping model:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "valid MIS") {
		t.Errorf("beep run did not produce a valid MIS:\n%s", out.String())
	}
}

// TestRunPhases checks the -phases breakdown: the CD algorithm's labels
// must appear with a 100% share attributed to named phases.
func TestRunPhases(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-n", "12", "-graph", "gnp", "-algo", "cd", "-phases", "-width", "0"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"phase breakdown", "competition", "check", "reception outcomes"} {
		if !strings.Contains(s, want) {
			t.Errorf("phases output missing %q:\n%s", want, s)
		}
	}
	if strings.Contains(s, "(unlabeled)") {
		t.Errorf("CD run attributed energy to an unlabeled phase:\n%s", s)
	}
}

// TestRunNoCDPhases smoke-tests the no-CD algorithm path with the phase
// breakdown on.
func TestRunNoCDPhases(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-n", "12", "-graph", "cycle", "-algo", "nocd", "-phases", "-width", "0"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "competition") {
		t.Errorf("no-cd phases output missing competition phase:\n%s", out.String())
	}
}

// TestRunExports checks that -jsonl and -chrome write well-formed files.
func TestRunExports(t *testing.T) {
	dir := t.TempDir()
	jsonl := filepath.Join(dir, "events.jsonl")
	chrome := filepath.Join(dir, "trace.json")
	err := run([]string{"-n", "8", "-graph", "cycle", "-algo", "cd",
		"-jsonl", jsonl, "-chrome", chrome, "-width", "0"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(jsonl)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	lines := 0
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var ev map[string]any
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("jsonl line %d invalid: %v", lines+1, err)
		}
		lines++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines == 0 {
		t.Error("jsonl export is empty")
	}

	raw, err := os.ReadFile(chrome)
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(raw, &events); err != nil {
		t.Fatalf("chrome trace invalid: %v", err)
	}
	if len(events) == 0 {
		t.Error("chrome trace is empty")
	}
}

func TestHelpers(t *testing.T) {
	if maxOf([]uint64{1, 5, 3}) != 5 {
		t.Error("maxOf wrong")
	}
	if maxOf(nil) != 0 {
		t.Error("maxOf(nil) wrong")
	}
	if avg([]uint64{2, 4}) != 3 {
		t.Error("avg wrong")
	}
	if avg(nil) != 0 {
		t.Error("avg(nil) wrong")
	}
}
