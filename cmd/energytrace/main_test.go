package main

import "testing"

func TestRunTimeline(t *testing.T) {
	if err := run([]string{"-n", "8", "-graph", "cycle", "-algo", "cd", "-width", "60"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunNaive(t *testing.T) {
	if err := run([]string{"-n", "8", "-graph", "star", "-algo", "naive-cd"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-algo", "nocd"}); err == nil {
		t.Error("unsupported algo accepted")
	}
	if err := run([]string{"-graph", "bogus"}); err == nil {
		t.Error("unknown graph accepted")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestHelpers(t *testing.T) {
	if maxOf([]uint64{1, 5, 3}) != 5 {
		t.Error("maxOf wrong")
	}
	if maxOf(nil) != 0 {
		t.Error("maxOf(nil) wrong")
	}
	if avg([]uint64{2, 4}) != 3 {
		t.Error("avg wrong")
	}
	if avg(nil) != 0 {
		t.Error("avg(nil) wrong")
	}
}
