package main

import "testing"

func TestRunSelectedQuick(t *testing.T) {
	if err := run([]string{"-quick", "-e", "E4"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-e", "E99"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("bad flag accepted")
	}
}
