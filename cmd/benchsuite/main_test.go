package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"radiomis/internal/experiments"
)

func TestRunSelectedQuick(t *testing.T) {
	if err := run(context.Background(), []string{"-quick", "-e", "E4"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run(context.Background(), []string{"-e", "E99"}, io.Discard); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run(context.Background(), []string{"-bogus"}, io.Discard); err == nil {
		t.Error("bad flag accepted")
	}
}

// TestJSONReportSchema runs a quick subset of the suite with -json and
// checks the emitted report against the stable schema: typed round-trip,
// schema version, and per-experiment metric summaries.
func TestJSONReportSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.json")
	err := run(context.Background(), []string{"-quick", "-seed", "7", "-e", "E2,E8", "-json", path}, io.Discard)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read report: %v", err)
	}

	var jr experiments.JSONReport
	if err := json.Unmarshal(raw, &jr); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if jr.Schema != experiments.SchemaVersion {
		t.Fatalf("schema = %q, want %q", jr.Schema, experiments.SchemaVersion)
	}
	if jr.Seed != 7 || !jr.Quick {
		t.Errorf("config echo: seed=%d quick=%v, want seed=7 quick=true", jr.Seed, jr.Quick)
	}
	if got, want := len(jr.Experiments), 2; got != want {
		t.Fatalf("experiments = %d, want %d", got, want)
	}
	for i, id := range []string{"E2", "E8"} {
		exp := jr.Experiments[i]
		if exp.ID != id {
			t.Errorf("experiment %d: id = %q, want %q", i, exp.ID, id)
		}
		if exp.Title == "" || exp.Claim == "" {
			t.Errorf("%s: empty title or claim", id)
		}
		if len(exp.Tables) == 0 {
			t.Errorf("%s: no tables", id)
		}
		for _, tab := range exp.Tables {
			if len(tab.Header) == 0 {
				t.Errorf("%s: table without header", id)
			}
			for _, row := range tab.Rows {
				if len(row) != len(tab.Header) {
					t.Errorf("%s: row width %d != header width %d", id, len(row), len(tab.Header))
				}
			}
		}
		if len(exp.Metrics) == 0 {
			t.Errorf("%s: no metric summaries", id)
		}
		for _, m := range exp.Metrics {
			if m.Series == "" || m.Metric == "" {
				t.Errorf("%s: metric point missing series/metric: %+v", id, m)
			}
			if m.Summary.Count <= 0 {
				t.Errorf("%s: %s/%s summary count = %d, want > 0", id, m.Series, m.Metric, m.Summary.Count)
			}
			if m.Summary.Min > m.Summary.Max {
				t.Errorf("%s: %s/%s min %v > max %v", id, m.Series, m.Metric, m.Summary.Min, m.Summary.Max)
			}
		}
	}

	if jr.Host == nil {
		t.Fatal("report missing host header")
	}
	if jr.Host.GoVersion == "" || jr.Host.GOMAXPROCS < 1 || jr.Host.NumCPU < 1 || jr.Host.PoolShards < 1 {
		t.Errorf("host header incomplete: %+v", jr.Host)
	}
	for _, exp := range jr.Experiments {
		if exp.Perf == nil {
			t.Errorf("%s: missing perf section", exp.ID)
			continue
		}
		p := exp.Perf
		if p.Trials == 0 {
			t.Errorf("%s: perf reports 0 trials", exp.ID)
		}
		tm := p.TrialMs
		if tm.Mean <= 0 || tm.Max <= 0 {
			t.Errorf("%s: non-positive trial timings: %+v", exp.ID, tm)
		}
		if tm.P50 > tm.P90 || tm.P90 > tm.P99 || tm.P99 > tm.Max*1.001 {
			t.Errorf("%s: trial quantiles out of order: %+v", exp.ID, tm)
		}
	}

	// Field-name stability: the documented keys must appear verbatim; a
	// renamed json tag is a schema break even if the typed round-trip works.
	var loose map[string]any
	if err := json.Unmarshal(raw, &loose); err != nil {
		t.Fatalf("re-unmarshal: %v", err)
	}
	for _, key := range []string{"schema", "seed", "quick", "host", "experiments"} {
		if _, ok := loose[key]; !ok {
			t.Errorf("top-level key %q missing", key)
		}
	}
	host := loose["host"].(map[string]any)
	for _, key := range []string{"goVersion", "goos", "goarch", "gomaxprocs", "numCpu", "poolShards", "pooled"} {
		if _, ok := host[key]; !ok {
			t.Errorf("host key %q missing", key)
		}
	}
	exp0 := loose["experiments"].([]any)[0].(map[string]any)
	for _, key := range []string{"id", "title", "claim", "durationMs", "perf", "tables", "metrics"} {
		if _, ok := exp0[key]; !ok {
			t.Errorf("experiment key %q missing", key)
		}
	}
	perf0 := exp0["perf"].(map[string]any)
	for _, key := range []string{"trials", "trialMs"} {
		if _, ok := perf0[key]; !ok {
			t.Errorf("perf key %q missing", key)
		}
	}
	trialMs := perf0["trialMs"].(map[string]any)
	for _, key := range []string{"mean", "p50", "p90", "p99", "max"} {
		if _, ok := trialMs[key]; !ok {
			t.Errorf("trialMs key %q missing", key)
		}
	}
	met0 := exp0["metrics"].([]any)[0].(map[string]any)
	for _, key := range []string{"series", "x", "metric", "summary"} {
		if _, ok := met0[key]; !ok {
			t.Errorf("metric key %q missing", key)
		}
	}
	sum0 := met0["summary"].(map[string]any)
	for _, key := range []string{"count", "mean", "std", "min", "max", "median", "p90"} {
		if _, ok := sum0[key]; !ok {
			t.Errorf("summary key %q missing", key)
		}
	}
}

// TestRunTimeout checks the -timeout flag: an absurdly small budget must
// abort the suite with a context error, and a partial (possibly empty)
// JSON report must still be written.
func TestRunTimeout(t *testing.T) {
	path := filepath.Join(t.TempDir(), "partial.json")
	err := run(context.Background(), []string{"-quick", "-e", "E2", "-timeout", "1ns", "-json", path}, io.Discard)
	if err == nil {
		t.Fatal("run with 1ns timeout succeeded")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error = %v, want DeadlineExceeded in chain", err)
	}
	raw, readErr := os.ReadFile(path)
	if readErr != nil {
		t.Fatalf("partial report not written: %v", readErr)
	}
	var jr experiments.JSONReport
	if jsonErr := json.Unmarshal(raw, &jr); jsonErr != nil {
		t.Fatalf("partial report is not valid JSON: %v", jsonErr)
	}
}

// TestJSONToStdout checks that -json - writes the report (and only the
// report) to stdout, with tables diverted to stderr.
func TestJSONToStdout(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-quick", "-e", "E8", "-json", "-"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	var jr experiments.JSONReport
	if err := json.Unmarshal(out.Bytes(), &jr); err != nil {
		t.Fatalf("stdout is not a pure JSON report: %v", err)
	}
	if len(jr.Experiments) != 1 || jr.Experiments[0].ID != "E8" {
		t.Fatalf("unexpected experiments in report: %+v", jr.Experiments)
	}
}
