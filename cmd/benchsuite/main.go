// Command benchsuite regenerates the reproduction experiments E1–E15 (one
// per quantitative claim of the paper, plus the E14 fault-injection
// robustness sweeps — see DESIGN.md's per-experiment index) and prints
// their result tables. EXPERIMENTS.md records the expected shapes and a
// reference run's numbers.
//
// Usage:
//
//	benchsuite              # run everything at full scale
//	benchsuite -quick       # smoke-test scale
//	benchsuite -e E2,E5     # selected experiments
//	benchsuite -json out.json  # also write a machine-readable report ("-" = stdout)
//	benchsuite -timeout 5m  # bound the whole run; exits non-zero on expiry
//
// The -json report follows the stable experiments.SchemaVersion layout:
// every experiment's tables plus its metric summaries
// (count/mean/std/min/max/median/p90 per (series, x, metric) point), a
// host header (go version, GOMAXPROCS, engine pool shards), and a
// per-experiment perf section summarizing the trial wall-time histogram
// (timing only — metric points stay deterministic in seed and scale).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"radiomis/internal/experiments"
	"radiomis/internal/logx"
	"radiomis/internal/telemetry"
	"radiomis/internal/trace"
)

func main() {
	if err := run(context.Background(), os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchsuite:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchsuite", flag.ContinueOnError)
	var (
		only     = fs.String("e", "", "comma-separated experiment IDs (default: all)")
		quick    = fs.Bool("quick", false, "smoke-test scale")
		seed     = fs.Uint64("seed", 1, "suite seed")
		jsonPath = fs.String("json", "", "write a machine-readable report to this file (\"-\" = stdout)")
		timeout  = fs.Duration("timeout", 0, "abort the whole run after this long (0 = no limit)")
		logLevel = fs.String("log-level", "info", "log level: debug, info, warn, error")
		logFmt   = fs.String("log-format", "text", "log format: text or json")
		traceOut = fs.String("trace", "", "write a Chrome trace of the suite's spans to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	level, err := logx.ParseLevel(*logLevel)
	if err != nil {
		return err
	}
	format, err := logx.ParseFormat(*logFmt)
	if err != nil {
		return err
	}
	log := logx.New(os.Stderr, level, format)
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	// Tracing is opt-in and out-of-band: the report's metric points are
	// bit-identical with or without -trace.
	var tracer *trace.Tracer
	if *traceOut != "" {
		tracer = trace.New(0)
		ctx = trace.WithTracer(ctx, tracer)
	}

	cfg := experiments.Config{Seed: *seed, Quick: *quick}
	defs := experiments.All()
	if *only != "" {
		defs = defs[:0]
		for _, id := range strings.Split(*only, ",") {
			def, err := experiments.Lookup(strings.TrimSpace(id))
			if err != nil {
				return err
			}
			defs = append(defs, def)
		}
	}

	// When the JSON report goes to stdout, route the human-readable tables
	// to stderr so the JSON stays parseable.
	tablesOut := stdout
	if *jsonPath == "-" {
		tablesOut = os.Stderr
	}

	jr := experiments.NewJSONReport(cfg)
	var runErr error
	for _, def := range defs {
		// Fresh registry per experiment: the harness observes per-trial
		// wall time into it, and the report's perf section summarizes it.
		// Telemetry never affects the experiment's numbers — metric points
		// are deterministic in (seed, quick) with or without it.
		reg := telemetry.New()
		start := time.Now()
		ectx, sp := trace.Start(ctx, "benchsuite.experiment", trace.A("experiment", def.ID))
		log.DebugContext(ectx, "experiment starting", "experiment", def.ID)
		rep, err := def.Run(telemetry.WithRegistry(ectx, reg), cfg)
		sp.End()
		if err != nil {
			runErr = fmt.Errorf("%s: %w", def.ID, err)
			if errors.Is(err, context.DeadlineExceeded) {
				// The -timeout budget expired mid-suite: emit whatever
				// completed, flagged as partial, and exit non-zero.
				fmt.Fprintf(tablesOut, "benchsuite: timeout after %v during %s; report is partial (%d/%d experiments)\n",
					*timeout, def.ID, len(jr.Experiments), len(defs))
				runErr = fmt.Errorf("%s: timeout %v expired (partial report: %d/%d experiments): %w",
					def.ID, *timeout, len(jr.Experiments), len(defs), err)
			}
			break
		}
		elapsed := time.Since(start)
		log.Info("experiment done", "experiment", def.ID, "duration", elapsed.Round(time.Millisecond).String())
		jr.Add(rep, elapsed, experiments.PerfFromRegistry(reg))
		fmt.Fprintln(tablesOut, strings.Repeat("=", 78))
		fmt.Fprint(tablesOut, rep)
		fmt.Fprintf(tablesOut, "(%s in %v)\n\n", def.ID, elapsed.Round(time.Millisecond))
	}

	if *jsonPath != "" {
		if err := writeJSON(jr, *jsonPath, stdout); err != nil {
			return fmt.Errorf("writing json report: %w", err)
		}
	}
	if tracer != nil {
		if err := writeTrace(*traceOut, tracer); err != nil {
			return fmt.Errorf("writing trace: %w", err)
		}
		log.Info("trace written", "path", *traceOut, "spans", len(tracer.Spans()))
	}
	return runErr
}

// writeTrace dumps the tracer's spans as a Chrome trace-event file
// (loadable in chrome://tracing or ui.perfetto.dev).
func writeTrace(path string, tracer *trace.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteChrome(f, tracer.Spans()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeJSON(jr *experiments.JSONReport, path string, stdout io.Writer) error {
	if path == "-" {
		return jr.Write(stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := jr.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
