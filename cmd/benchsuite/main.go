// Command benchsuite regenerates the reproduction experiments E1–E9 (one
// per quantitative claim of the paper — see DESIGN.md's per-experiment
// index) and prints their result tables. EXPERIMENTS.md records the
// expected shapes and a reference run's numbers.
//
// Usage:
//
//	benchsuite              # run everything at full scale
//	benchsuite -quick       # smoke-test scale
//	benchsuite -e E2,E5     # selected experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"radiomis/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchsuite:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchsuite", flag.ContinueOnError)
	var (
		only  = fs.String("e", "", "comma-separated experiment IDs (default: all)")
		quick = fs.Bool("quick", false, "smoke-test scale")
		seed  = fs.Uint64("seed", 1, "suite seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := experiments.Config{Seed: *seed, Quick: *quick}
	defs := experiments.All()
	if *only != "" {
		defs = defs[:0]
		for _, id := range strings.Split(*only, ",") {
			def, err := experiments.Lookup(strings.TrimSpace(id))
			if err != nil {
				return err
			}
			defs = append(defs, def)
		}
	}

	for _, def := range defs {
		start := time.Now()
		rep, err := def.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", def.ID, err)
		}
		fmt.Println(strings.Repeat("=", 78))
		fmt.Print(rep)
		fmt.Printf("(%s in %v)\n\n", def.ID, time.Since(start).Round(time.Millisecond))
	}
	return nil
}
