// Command radiomisd serves the radio-network simulator as a service: an
// HTTP JSON API that queues simulation jobs (reproduction experiments or
// single-algorithm runs), executes them on a bounded worker pool, caches
// results, and streams per-job progress as JSON lines. See docs/api.md for
// the radiomis.server/v1 wire schema.
//
// Usage:
//
//	radiomisd                     # listen on :8347 with default pool sizes
//	radiomisd -addr :9000 -workers 8 -queue 64 -cache 256
//	radiomisd -pprof              # also mount /debug/pprof/ profiling endpoints
//	radiomisd -log-format json -log-level debug
//	radiomisd -trace=false        # disable distributed tracing
//	radiomisd -data-dir /var/lib/radiomisd          # durable WAL job store
//	radiomisd -coordinator http://w1:8347,http://w2:8347  # cluster coordinator
//	radiomisd -version            # print build information and exit
//
// With -data-dir, every accepted job and state transition is appended to
// a write-ahead log under the directory; on restart the daemon replays
// the log, re-enqueuing jobs that were queued or running when it died
// (the engine is deterministic per seed, so they re-execute to the same
// results). Without the flag the daemon is purely in-memory, exactly as
// before.
//
// With -coordinator, the daemon becomes a cluster coordinator: solve jobs
// with ≥ 2 trials are split into seed-range shards and fanned out to the
// given worker daemons (ordinary radiomisd processes) over the v1 API,
// with shards stolen from workers that die mid-job; merged results are
// bit-identical to a single-node run. GET /v1/cluster reports the
// coordinator's view of its workers. Note the worker list rides on
// -coordinator itself: -workers has always been the executor pool size.
//
// A coordinator also runs the cluster observability plane: it pulls each
// worker's /v1/telemetry snapshot every -federate-interval and serves a
// federated /metrics (per-worker samples plus a worker="cluster"
// aggregate), re-emits worker shard progress on the fanned-out job's own
// /events stream with worker/shard attribution, and stitches worker spans
// into /debug/traces so one trace spans coordinator and workers. With
// -cluster-degrade=false a fan-out that loses every worker fails instead
// of running locally, and /readyz turns 503 while all workers are dead.
//
// The daemon traces by default: every /v1 request runs under a root span
// (continuing an inbound W3C traceparent), jobs hang their span trees
// beneath it down to engine round slices, and GET /debug/traces serves
// the recent spans (?format=chrome or otlp for tool-ready exports).
// Tracing is out-of-band — simulation results are bit-identical with it
// on or off.
//
// The daemon drains gracefully on SIGINT/SIGTERM: in-flight jobs get
// -drain-timeout to finish, after which their simulations are aborted
// through context cancellation.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"radiomis/internal/cluster"
	"radiomis/internal/logx"
	"radiomis/internal/server"
	"radiomis/internal/store"
	"radiomis/internal/telemetry"
	"radiomis/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "radiomisd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("radiomisd", flag.ContinueOnError)
	var (
		addr         = fs.String("addr", ":8347", "listen address")
		workers      = fs.Int("workers", runtime.NumCPU(), "concurrent job executors")
		queue        = fs.Int("queue", 32, "max queued jobs before 429 backpressure")
		cache        = fs.Int("cache", 128, "result-cache capacity (LRU entries)")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "grace period for in-flight jobs on shutdown")
		pprofOn      = fs.Bool("pprof", false, "expose Go profiling endpoints under /debug/pprof/")
		traceOn      = fs.Bool("trace", true, "trace requests and jobs (see GET /debug/traces)")
		traceBuffer  = fs.Int("trace-buffer", trace.DefaultCapacity, "recent-span ring capacity")
		heartbeat    = fs.Duration("event-heartbeat", 15*time.Second, "keep-alive interval for idle event streams (negative disables)")
		dataDir      = fs.String("data-dir", "", "directory for the durable WAL job store (empty = in-memory only)")
		walSegBytes  = fs.Int64("wal-segment-bytes", 0, "WAL segment rotation threshold in bytes (0 = default 8 MiB)")
		walSync      = fs.Bool("wal-sync", false, "fsync the WAL after every append (survives power loss, not just crashes)")
		coordinator  = fs.String("coordinator", "", "comma-separated worker daemon URLs; non-empty runs this daemon as a cluster coordinator")
		shardsPer    = fs.Int("shards-per-worker", 2, "coordinator fan-out granularity: max shards per worker per job")
		liveness     = fs.Duration("cluster-liveness", 30*time.Second, "coordinator declares a worker dead after this much event-stream silence")
		fedInterval  = fs.Duration("federate-interval", 15*time.Second, "how often the coordinator pulls worker telemetry snapshots (negative disables federation)")
		degrade      = fs.Bool("cluster-degrade", true, "run fan-outs locally when every worker is lost (false fails the job and turns /readyz red)")
		logLevel     = fs.String("log-level", "info", "log level: debug, info, warn, error")
		logFormat    = fs.String("log-format", "text", "log format: text or json")
		version      = fs.Bool("version", false, "print build information and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		bi := server.ReadBuildInfo()
		fmt.Printf("radiomisd %s", orUnknown(bi.Version))
		if bi.Revision != "" {
			rev := bi.Revision
			if len(rev) > 12 {
				rev = rev[:12]
			}
			if bi.Modified {
				rev += "-dirty"
			}
			fmt.Printf(" (%s)", rev)
		}
		fmt.Printf(" %s\n", orUnknown(bi.GoVersion))
		return nil
	}

	level, err := logx.ParseLevel(*logLevel)
	if err != nil {
		return err
	}
	format, err := logx.ParseFormat(*logFormat)
	if err != nil {
		return err
	}
	log := logx.New(os.Stderr, level, format)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var tracer *trace.Tracer
	if *traceOn {
		tracer = trace.New(*traceBuffer)
	}

	// One registry serves /metrics for every subsystem: the job manager,
	// the WAL store, and the cluster coordinator all register on it.
	reg := telemetry.New()

	var st *store.Log
	if *dataDir != "" {
		var err error
		st, err = store.Open(*dataDir, store.Options{
			SegmentBytes: *walSegBytes,
			Sync:         *walSync,
			Metrics:      reg,
		})
		if err != nil {
			return err
		}
		log.Info("wal open", "dataDir", *dataDir, "jobs", len(st.Jobs()), "tornTail", st.TornTail())
	}

	var coord *cluster.Coordinator
	var executor server.ExecuteFunc
	if *coordinator != "" {
		urls := strings.Split(*coordinator, ",")
		for i := range urls {
			urls[i] = strings.TrimSpace(urls[i])
		}
		var err error
		coord, err = cluster.New(cluster.Options{
			Workers:          urls,
			ShardsPerWorker:  *shardsPer,
			Liveness:         *liveness,
			DisableFallback:  !*degrade,
			FederateInterval: *fedInterval,
			Tracer:           tracer,
			Registry:         reg,
			Logger:           log,
		})
		if err != nil {
			return err
		}
		defer coord.Close()
		executor = coord.Executor()
		log.Info("coordinator mode", "workers", urls,
			"shardsPerWorker", *shardsPer, "liveness", *liveness,
			"federateInterval", *fedInterval, "degrade", *degrade)
	}

	mgr := server.New(server.Options{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheSize:      *cache,
		Tracer:         tracer,
		Logger:         log,
		EventHeartbeat: *heartbeat,
		Executor:       executor,
		Store:          st,
		Registry:       reg,
	})
	var hopts []server.HandlerOption
	if *pprofOn {
		hopts = append(hopts, server.WithPprof())
	}
	if coord != nil {
		// The coordinator's observability plane: federated /metrics and
		// /v1/cluster, worker liveness on /readyz, and on-demand stitching
		// of worker spans into /debug/traces.
		hopts = append(hopts,
			server.WithClusterStatus(func() any { return coord.Status() }),
			server.WithFederatedMetrics(coord.WorkerSnapshots),
			server.WithClusterReadiness(coord.Readiness),
		)
		if tracer != nil {
			hopts = append(hopts, server.WithTraceImport(coord.StitchTrace))
		}
	}
	srv := &http.Server{Addr: *addr, Handler: server.NewHandler(mgr, hopts...)}

	errc := make(chan error, 1)
	go func() {
		log.Info("listening", "addr", *addr, "workers", *workers, "queue", *queue,
			"cache", *cache, "tracing", tracer != nil)
		if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
			return
		}
		errc <- nil
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop() // a second signal kills the process the default way

	log.Info("shutting down", "drainTimeout", *drainTimeout)
	shutCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		log.Warn("http shutdown", "error", err)
	}
	if err := mgr.Shutdown(shutCtx); err != nil {
		log.Warn("aborted in-flight jobs", "error", err)
	}
	return <-errc
}

func orUnknown(s string) string {
	if s == "" {
		return "unknown"
	}
	return s
}
