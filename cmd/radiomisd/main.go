// Command radiomisd serves the radio-network simulator as a service: an
// HTTP JSON API that queues simulation jobs (reproduction experiments or
// single-algorithm runs), executes them on a bounded worker pool, caches
// results, and streams per-job progress as JSON lines. See docs/api.md for
// the radiomis.server/v1 wire schema.
//
// Usage:
//
//	radiomisd                     # listen on :8347 with default pool sizes
//	radiomisd -addr :9000 -workers 8 -queue 64 -cache 256
//	radiomisd -pprof              # also mount /debug/pprof/ profiling endpoints
//
// The daemon drains gracefully on SIGINT/SIGTERM: in-flight jobs get
// -drain-timeout to finish, after which their simulations are aborted
// through context cancellation.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"radiomis/internal/server"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "radiomisd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("radiomisd", flag.ContinueOnError)
	var (
		addr         = fs.String("addr", ":8347", "listen address")
		workers      = fs.Int("workers", runtime.NumCPU(), "concurrent job executors")
		queue        = fs.Int("queue", 32, "max queued jobs before 429 backpressure")
		cache        = fs.Int("cache", 128, "result-cache capacity (LRU entries)")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "grace period for in-flight jobs on shutdown")
		pprofOn      = fs.Bool("pprof", false, "expose Go profiling endpoints under /debug/pprof/")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	mgr := server.New(server.Options{Workers: *workers, QueueDepth: *queue, CacheSize: *cache})
	var hopts []server.HandlerOption
	if *pprofOn {
		hopts = append(hopts, server.WithPprof())
	}
	srv := &http.Server{Addr: *addr, Handler: server.NewHandler(mgr, hopts...)}

	errc := make(chan error, 1)
	go func() {
		log.Printf("radiomisd: listening on %s (workers=%d queue=%d cache=%d)", *addr, *workers, *queue, *cache)
		if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
			return
		}
		errc <- nil
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop() // a second signal kills the process the default way

	log.Printf("radiomisd: shutting down (drain timeout %v)", *drainTimeout)
	shutCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		log.Printf("radiomisd: http shutdown: %v", err)
	}
	if err := mgr.Shutdown(shutCtx); err != nil {
		log.Printf("radiomisd: aborted in-flight jobs: %v", err)
	}
	return <-errc
}
