package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunWritesSVG(t *testing.T) {
	out := filepath.Join(t.TempDir(), "field.svg")
	if err := run([]string{"-n", "60", "-seed", "3", "-algo", "cd", "-o", out}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	svg := string(data)
	for _, want := range []string{"<svg", "</svg>", "circle", "line"} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-algo", "bogus"}); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("bad flag accepted")
	}
	if err := run([]string{"-n", "40", "-o", "/nonexistent-dir/x.svg", "-algo", "cd"}); err == nil {
		t.Error("unwritable output accepted")
	}
}
