// Command fieldmap renders a unit-disk sensor field and its MIS-derived
// backbone as an SVG: radio links in grey, cluster assignments in light
// color, clusterheads as filled circles, connectors as squares, and the
// elected coordinator highlighted. It makes the §1 application pipeline
// visually inspectable.
//
// Usage:
//
//	fieldmap -n 225 -seed 31 -o field.svg
//	fieldmap -n 400 -algo cd -o /tmp/map.svg
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"radiomis/internal/backbone"
	"radiomis/internal/graph"
	"radiomis/internal/mis"
	"radiomis/internal/rng"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fieldmap:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("fieldmap", flag.ContinueOnError)
	var (
		n    = fs.Int("n", 225, "number of sensors")
		seed = fs.Uint64("seed", 31, "random seed")
		algo = fs.String("algo", "nocd", "MIS algorithm: cd|nocd")
		out  = fs.String("o", "field.svg", "output SVG path")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	radius := math.Sqrt(12.0 / (math.Pi * float64(*n)))
	g, pts := graph.UnitDisk(*n, radius, rng.New(*seed))
	p := mis.ParamsDefault(g.N(), g.MaxDegree())

	var res *mis.Result
	var err error
	switch *algo {
	case "cd":
		res, err = mis.Run("cd", g, p, mis.RunOpts{Seed: *seed})
	case "nocd":
		res, err = mis.Run("nocd", g, p, mis.RunOpts{Seed: *seed})
	default:
		return fmt.Errorf("unknown algorithm %q", *algo)
	}
	if err != nil {
		return err
	}
	if err := res.Check(g); err != nil {
		return fmt.Errorf("MIS invalid: %w", err)
	}

	b, err := backbone.Build(g, res.InMIS)
	if err != nil {
		return err
	}
	c := backbone.ColorBackbone(g, b)
	coord, err := backbone.ElectCoordinator(g, b, c, 0, *seed)
	if err != nil {
		return err
	}

	svg := renderSVG(g, pts, b, coord)
	if err := os.WriteFile(*out, []byte(svg), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %v, %d heads, %d connectors, coordinator %v\n",
		*out, g, b.Heads(), b.Connectors(), coord.Coordinators())
	return nil
}

// renderSVG draws the field at 800×800 with a small margin.
func renderSVG(g *graph.Graph, pts [][2]float64, b *backbone.Backbone, coord *backbone.CoordinatorResult) string {
	const size, margin = 800.0, 20.0
	sx := func(x float64) float64 { return margin + x*(size-2*margin) }
	sy := func(y float64) float64 { return margin + y*(size-2*margin) }

	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n",
		size, size, size, size)
	sb.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")

	// Radio links.
	for _, e := range g.Edges() {
		fmt.Fprintf(&sb, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#dddddd" stroke-width="1"/>`+"\n",
			sx(pts[e[0]][0]), sy(pts[e[0]][1]), sx(pts[e[1]][0]), sy(pts[e[1]][1]))
	}
	// Cluster attachment edges.
	for v := 0; v < g.N(); v++ {
		h := b.Cluster[v]
		if h == v {
			continue
		}
		fmt.Fprintf(&sb, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#9ecae1" stroke-width="1.5"/>`+"\n",
			sx(pts[v][0]), sy(pts[v][1]), sx(pts[h][0]), sy(pts[h][1]))
	}
	// Nodes.
	for v := 0; v < g.N(); v++ {
		x, y := sx(pts[v][0]), sy(pts[v][1])
		switch {
		case coord.Coordinator[v]:
			fmt.Fprintf(&sb, `<circle cx="%.1f" cy="%.1f" r="10" fill="#d62728" stroke="black" stroke-width="2"/>`+"\n", x, y)
		case b.Head[v]:
			fmt.Fprintf(&sb, `<circle cx="%.1f" cy="%.1f" r="7" fill="#1f77b4" stroke="black"/>`+"\n", x, y)
		case b.Connector[v]:
			fmt.Fprintf(&sb, `<rect x="%.1f" y="%.1f" width="10" height="10" fill="#2ca02c" stroke="black"/>`+"\n", x-5, y-5)
		default:
			fmt.Fprintf(&sb, `<circle cx="%.1f" cy="%.1f" r="3" fill="#aaaaaa"/>`+"\n", x, y)
		}
	}
	fmt.Fprintf(&sb, `<text x="%.0f" y="%.0f" font-family="monospace" font-size="14">n=%d heads=%d connectors=%d (red=coordinator, blue=head, green=connector)</text>`+"\n",
		margin, size-6, g.N(), b.Heads(), b.Connectors())
	sb.WriteString("</svg>\n")
	return sb.String()
}
