package main

import (
	"encoding/json"
	"os"
	"testing"
)

func TestScheduleSubcommand(t *testing.T) {
	if err := run([]string{"schedule", "-graph", "grid", "-n", "64", "-seed", "3", "-check"}); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleSubcommandVerbose(t *testing.T) {
	if err := run([]string{"schedule", "-graph", "cycle", "-n", "24", "-v"}); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleSubcommandRadioAlgo(t *testing.T) {
	if testing.Short() {
		t.Skip("radio layer simulation is slow")
	}
	if err := run([]string{"schedule", "-algo", "cd", "-graph", "gnp", "-n", "48", "-check"}); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleSubcommandErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{name: "unknown algo", args: []string{"schedule", "-algo", "bogus"}},
		{name: "unknown graph", args: []string{"schedule", "-graph", "bogus"}},
		{name: "bad flag", args: []string{"schedule", "-definitely-not-a-flag"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := run(tt.args); err == nil {
				t.Error("expected error")
			}
		})
	}
}

// TestScheduleJSONOutput captures the -json document and validates the
// plan against the edge list it carries — the same check the CI smoke
// script performs externally.
func TestScheduleJSONOutput(t *testing.T) {
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := run([]string{"schedule", "-graph", "gnp", "-n", "80", "-seed", "5", "-json"})
	w.Close()
	os.Stdout = old
	if runErr != nil {
		t.Fatal(runErr)
	}
	var doc scheduleJSON
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Schema != scheduleSchema || doc.Algorithm != "linear" || doc.N != 80 {
		t.Errorf("document header = %+v", doc)
	}
	// Rebuild adjacency from the emitted edges and re-check the plan.
	adj := make(map[[2]int]bool, len(doc.Edges))
	for _, e := range doc.Edges {
		adj[e] = true
	}
	layer := make([]int, doc.N)
	for v := range layer {
		layer[v] = -1
	}
	for i, b := range doc.Batches {
		for _, v := range b {
			if layer[v] != -1 {
				t.Fatalf("vertex %d scheduled twice", v)
			}
			layer[v] = i
		}
		for _, v := range b {
			for _, u := range b {
				if u < v && adj[[2]int{u, v}] {
					t.Fatalf("edge {%d,%d} inside batch %d", u, v, i)
				}
			}
		}
	}
	for v, l := range layer {
		if l == -1 {
			t.Fatalf("vertex %d unscheduled", v)
		}
	}
	if doc.Stats.Batches != len(doc.Batches) {
		t.Errorf("stats.batches = %d, want %d", doc.Stats.Batches, len(doc.Batches))
	}
}
