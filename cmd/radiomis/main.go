// Command radiomis runs one of the paper's MIS algorithms on a generated
// radio network and reports the outcome: validity, set size, worst/average
// energy, and round count.
//
// Usage:
//
//	radiomis -algo cd -graph gnp -n 1024 -seed 7
//	radiomis -algo nocd -graph unitdisk -n 256 -trials 5
//	radiomis -algo cd -graph grid -n 400 -v      # per-node dump
//	radiomis -algo cd -n 512 -faults loss=0.2,crash=0.01,restart=16
//	radiomis -algo cd -n 512 -trace run.json     # span timeline for chrome://tracing
//
// The `schedule` subcommand peels a conflict graph into independent
// execution batches by iterated MIS:
//
//	radiomis schedule -graph gnp -n 512 -seed 7
//	radiomis schedule -algo cd -n 128 -check     # radio layers, re-verified
//	radiomis schedule -n 256 -json               # full plan + edges on stdout
//
// Algorithms: cd, beep, nocd, lowdegree, linear, naive-cd, naive-nocd,
// unknown-delta. Graphs: gnp, unitdisk, grid, tree, hypercube, clique,
// cycle, star, lowerbound, prefattach.
//
// With -faults, runs are perturbed by the internal/faults profile (keys:
// loss, noise, jam, jam-threshold, jam-prob, crash, restart, max-restarts,
// wake-spread) and validity is judged on the surviving subgraph. A run cut
// short by -timeout or Ctrl-C exits with status 2 and a distinct message.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"radiomis/internal/faults"
	"radiomis/internal/graph"
	"radiomis/internal/logx"
	"radiomis/internal/mis"
	"radiomis/internal/radio"
	"radiomis/internal/rng"
	"radiomis/internal/trace"
)

func main() {
	err := run(os.Args[1:])
	switch {
	case err == nil:
	case errors.Is(err, radio.ErrAborted):
		fmt.Fprintln(os.Stderr, "radiomis: run aborted before completing (timeout or interrupt):", err)
		os.Exit(2)
	default:
		fmt.Fprintln(os.Stderr, "radiomis:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	// Subcommand dispatch; bare flags keep their historical meaning (one
	// algorithm run), `radiomis schedule ...` plans batch schedules.
	if len(args) > 0 && args[0] == "schedule" {
		return runSchedule(args[1:])
	}
	fs := flag.NewFlagSet("radiomis", flag.ContinueOnError)
	var (
		algo     = fs.String("algo", "cd", "algorithm: cd|beep|nocd|lowdegree|naive-cd|naive-nocd|unknown-delta")
		family   = fs.String("graph", "gnp", "graph family (gnp, unitdisk, grid, tree, hypercube, clique, cycle, star, lowerbound, prefattach)")
		n        = fs.Int("n", 256, "approximate number of nodes")
		seed     = fs.Uint64("seed", 1, "random seed (graph and run are deterministic in it)")
		trialsN  = fs.Int("trials", 1, "number of runs over distinct seeds")
		paper    = fs.Bool("paper-params", false, "use the paper's conservative constants (slow)")
		faultStr = fs.String("faults", "", "fault profile spec, e.g. loss=0.1,jam=64,crash=0.005,restart=16")
		timeout  = fs.Duration("timeout", 0, "abort runs that exceed this wall-clock budget (0 = none)")
		verbose  = fs.Bool("v", false, "print per-node status and energy")
		logLevel = fs.String("log-level", "warn", "log level: debug, info, warn, error")
		logFmt   = fs.String("log-format", "text", "log format: text or json")
		traceOut = fs.String("trace", "", "write a Chrome trace of the run's spans to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	level, err := logx.ParseLevel(*logLevel)
	if err != nil {
		return err
	}
	format, err := logx.ParseFormat(*logFmt)
	if err != nil {
		return err
	}
	log := logx.New(os.Stderr, level, format)

	fam, err := graph.ParseFamily(*family)
	if err != nil {
		return err
	}
	if _, err := solver(*algo); err != nil {
		return err
	}
	fp, err := faults.ParseSpec(*faultStr)
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	// Tracing is opt-in on the CLI and out-of-band: results are
	// bit-identical with or without -trace.
	var tracer *trace.Tracer
	if *traceOut != "" {
		tracer = trace.New(0)
		ctx = trace.WithTracer(ctx, tracer)
	}

	for trial := 0; trial < *trialsN; trial++ {
		trialSeed := rng.Mix(*seed, uint64(trial))
		g := graph.Generate(fam, *n, rng.New(trialSeed))
		p := mis.ParamsDefault(g.N(), g.MaxDegree())
		if *paper {
			p = mis.ParamsPaper(g.N(), g.MaxDegree())
		}
		tctx, sp := trace.Start(ctx, "radiomis.trial",
			trace.A("trial", trial), trace.A("algo", *algo), trace.A("n", g.N()))
		log.DebugContext(tctx, "trial starting", "trial", trial, "algo", *algo, "n", g.N(), "seed", trialSeed)
		res, err := mis.SolveWithFaults(tctx, *algo, g, p, trialSeed, fp)
		sp.End()
		if err != nil {
			return err
		}
		validity := "VALID"
		check := res.Check(g)
		if !fp.IsZero() {
			check = res.CheckSurvivors(g)
		}
		if check != nil {
			validity = fmt.Sprintf("INVALID (%v)", check)
			log.Warn("run produced an invalid MIS", "trial", trial, "algo", *algo, "error", check.Error())
		}
		fmt.Printf("trial %d: %s  algo=%s  |MIS|=%d  maxEnergy=%d  avgEnergy=%.1f  rounds=%d  %s\n",
			trial, g, *algo, res.SetSize(), res.MaxEnergy(), res.AvgEnergy(), res.Rounds, validity)
		if res.Faults != nil {
			fmt.Printf("  faults: %s  lost=%d noised=%d jams=%d crashed=%d restarts=%d\n",
				fp, res.Faults.Lost, res.Faults.Noised, res.Faults.Jams, res.CrashCount(), res.Faults.Restarts)
		}
		if *verbose {
			for v := range res.Status {
				fmt.Printf("  node %4d  %-9s energy=%d\n", v, res.Status[v], res.Energy[v])
			}
		}
	}
	if tracer != nil {
		if err := writeTrace(*traceOut, tracer); err != nil {
			return fmt.Errorf("writing trace: %w", err)
		}
		log.Info("trace written", "path", *traceOut, "spans", len(tracer.Spans()))
	}
	return nil
}

// writeTrace dumps the tracer's spans as a Chrome trace-event file
// (loadable in chrome://tracing or ui.perfetto.dev).
func writeTrace(path string, tracer *trace.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteChrome(f, tracer.Spans()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// solver validates an algorithm name and returns its classic (context-free,
// fault-free) entry point, resolved through the mis registry — the same
// registry mis.Run and the daemon's /v1/algorithms endpoint use, so the
// CLI's accepted names can never drift from theirs.
func solver(name string) (func(*graph.Graph, mis.Params, uint64) (*mis.Result, error), error) {
	if !mis.KnownAlgorithm(name) {
		return nil, fmt.Errorf("unknown algorithm %q (known: %s)", name, strings.Join(mis.Algorithms(), ", "))
	}
	return func(g *graph.Graph, p mis.Params, seed uint64) (*mis.Result, error) {
		return mis.Run(name, g, p, mis.RunOpts{Seed: seed})
	}, nil
}
