// Command radiomis runs one of the paper's MIS algorithms on a generated
// radio network and reports the outcome: validity, set size, worst/average
// energy, and round count.
//
// Usage:
//
//	radiomis -algo cd -graph gnp -n 1024 -seed 7
//	radiomis -algo nocd -graph unitdisk -n 256 -trials 5
//	radiomis -algo cd -graph grid -n 400 -v      # per-node dump
//
// Algorithms: cd, beep, nocd, lowdegree, naive-cd, naive-nocd,
// unknown-delta. Graphs: gnp, unitdisk, grid, tree, hypercube, clique,
// cycle, star, lowerbound, prefattach.
package main

import (
	"flag"
	"fmt"
	"os"

	"radiomis/internal/graph"
	"radiomis/internal/mis"
	"radiomis/internal/rng"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "radiomis:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("radiomis", flag.ContinueOnError)
	var (
		algo    = fs.String("algo", "cd", "algorithm: cd|beep|nocd|lowdegree|naive-cd|naive-nocd|unknown-delta")
		family  = fs.String("graph", "gnp", "graph family (gnp, unitdisk, grid, tree, hypercube, clique, cycle, star, lowerbound, prefattach)")
		n       = fs.Int("n", 256, "approximate number of nodes")
		seed    = fs.Uint64("seed", 1, "random seed (graph and run are deterministic in it)")
		trialsN = fs.Int("trials", 1, "number of runs over distinct seeds")
		paper   = fs.Bool("paper-params", false, "use the paper's conservative constants (slow)")
		verbose = fs.Bool("v", false, "print per-node status and energy")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	fam, err := graph.ParseFamily(*family)
	if err != nil {
		return err
	}
	solve, err := solver(*algo)
	if err != nil {
		return err
	}

	for trial := 0; trial < *trialsN; trial++ {
		trialSeed := rng.Mix(*seed, uint64(trial))
		g := graph.Generate(fam, *n, rng.New(trialSeed))
		p := mis.ParamsDefault(g.N(), g.MaxDegree())
		if *paper {
			p = mis.ParamsPaper(g.N(), g.MaxDegree())
		}
		res, err := solve(g, p, trialSeed)
		if err != nil {
			return err
		}
		validity := "VALID"
		if err := res.Check(g); err != nil {
			validity = fmt.Sprintf("INVALID (%v)", err)
		}
		fmt.Printf("trial %d: %s  algo=%s  |MIS|=%d  maxEnergy=%d  avgEnergy=%.1f  rounds=%d  %s\n",
			trial, g, *algo, res.SetSize(), res.MaxEnergy(), res.AvgEnergy(), res.Rounds, validity)
		if *verbose {
			for v := range res.Status {
				fmt.Printf("  node %4d  %-9s energy=%d\n", v, res.Status[v], res.Energy[v])
			}
		}
	}
	return nil
}

func solver(name string) (func(*graph.Graph, mis.Params, uint64) (*mis.Result, error), error) {
	switch name {
	case "cd":
		return mis.SolveCD, nil
	case "beep":
		return mis.SolveBeep, nil
	case "nocd":
		return mis.SolveNoCD, nil
	case "lowdegree":
		return mis.SolveLowDegree, nil
	case "naive-cd":
		return mis.SolveNaiveCD, nil
	case "naive-nocd":
		return mis.SolveNaiveNoCD, nil
	case "unknown-delta":
		return mis.SolveUnknownDelta, nil
	default:
		return nil, fmt.Errorf("unknown algorithm %q", name)
	}
}
