package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"radiomis/internal/graph"
	"radiomis/internal/rng"
	"radiomis/internal/schedule"
)

// scheduleSchema versions the -json output of `radiomis schedule`.
const scheduleSchema = "radiomis.schedule/v1"

// scheduleJSON is the -json document: everything an external checker needs
// to validate the plan (the exact edge list) plus the plan itself.
type scheduleJSON struct {
	Schema    string         `json:"schema"`
	Algorithm string         `json:"algorithm"`
	Family    string         `json:"family"`
	N         int            `json:"n"`
	Seed      uint64         `json:"seed"`
	Edges     [][2]int       `json:"edges"`
	Batches   [][]int        `json:"batches"`
	Stats     schedule.Stats `json:"stats"`
	PlanMs    float64        `json:"planMs"`
}

// runSchedule implements the `radiomis schedule` subcommand: peel a
// generated conflict graph into independent execution batches by iterated
// MIS and report the plan quality (or, with -json, the full plan and edge
// list for external validation).
func runSchedule(args []string) error {
	fs := flag.NewFlagSet("radiomis schedule", flag.ContinueOnError)
	var (
		algo     = fs.String("algo", "linear", "per-layer MIS algorithm (linear = sequential baseline; any registered algorithm works)")
		family   = fs.String("graph", "gnp", "conflict-graph family (gnp, unitdisk, grid, tree, hypercube, clique, cycle, star, lowerbound, prefattach)")
		n        = fs.Int("n", 256, "approximate number of vertices")
		seed     = fs.Uint64("seed", 1, "random seed (graph and plan are deterministic in it)")
		timeout  = fs.Duration("timeout", 0, "abort planning past this wall-clock budget (0 = none)")
		jsonOut  = fs.Bool("json", false, "emit the plan, stats, and edge list as one JSON document on stdout")
		verbose  = fs.Bool("v", false, "print every batch")
		validate = fs.Bool("check", false, "re-verify the plan's invariants before reporting")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	fam, err := graph.ParseFamily(*family)
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	g := graph.Generate(fam, *n, rng.New(*seed))
	start := time.Now()
	plan, err := schedule.Batches(g, schedule.Options{Algorithm: *algo, Seed: *seed, Ctx: ctx})
	if err != nil {
		return err
	}
	planMs := float64(time.Since(start)) / float64(time.Millisecond)
	if *validate {
		if err := plan.Validate(g); err != nil {
			return fmt.Errorf("plan failed validation: %w", err)
		}
	}
	stats := plan.Stats()

	if *jsonOut {
		doc := scheduleJSON{
			Schema:    scheduleSchema,
			Algorithm: *algo,
			Family:    fam.String(),
			N:         g.N(),
			Seed:      *seed,
			Edges:     edgeList(g),
			Batches:   plan.Batches(),
			Stats:     stats,
			PlanMs:    planMs,
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(doc)
	}

	fmt.Printf("schedule: %s  algo=%s  batches=%d  maxBatch=%d  meanBatch=%.1f  planMs=%.3f\n",
		g, *algo, stats.Batches, stats.MaxBatch, stats.MeanBatch, planMs)
	if *verbose {
		for i := 0; i < plan.NumBatches(); i++ {
			fmt.Printf("  batch %3d (%4d): %v\n", i, len(plan.Batch(i)), plan.Batch(i))
		}
	}
	return nil
}

// edgeList flattens g's adjacency into u < v pairs.
func edgeList(g *graph.Graph) [][2]int {
	edges := make([][2]int, 0, g.M())
	for v := 0; v < g.N(); v++ {
		for _, w := range g.Neighbors(v) {
			if v < w {
				edges = append(edges, [2]int{v, w})
			}
		}
	}
	return edges
}
