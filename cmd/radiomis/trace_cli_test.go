package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestRunWritesChromeTrace checks the -trace flag: the run must produce a
// valid Chrome trace-event array containing the per-trial spans and their
// sampled engine round slices.
func TestRunWritesChromeTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := run([]string{"-algo", "cd", "-graph", "cycle", "-n", "32", "-trials", "2",
		"-trace", path, "-log-level", "error"}); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var events []struct {
		Name string         `json:"name"`
		Args map[string]any `json:"args"`
	}
	if err := json.Unmarshal(b, &events); err != nil {
		t.Fatalf("trace is not a valid JSON array: %v", err)
	}
	names := make(map[string]int)
	for _, ev := range events {
		names[ev.Name]++
		if _, ok := ev.Args["traceId"]; !ok {
			t.Errorf("event %q has no traceId arg", ev.Name)
		}
	}
	if names["radiomis.trial"] != 2 {
		t.Errorf("got %d radiomis.trial events, want 2", names["radiomis.trial"])
	}
	if names["engine.rounds"] == 0 {
		t.Error("no engine.rounds events in the trace")
	}
}

func TestRunBadLogFlags(t *testing.T) {
	if err := run([]string{"-log-level", "loud"}); err == nil {
		t.Error("bad -log-level accepted")
	}
	if err := run([]string{"-log-format", "xml"}); err == nil {
		t.Error("bad -log-format accepted")
	}
}
