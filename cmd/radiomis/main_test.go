package main

import (
	"testing"
)

func TestRunSmallCD(t *testing.T) {
	if err := run([]string{"-algo", "cd", "-graph", "cycle", "-n", "32", "-trials", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunVerbose(t *testing.T) {
	if err := run([]string{"-algo", "beep", "-graph", "grid", "-n", "16", "-v"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunNoCDSmall(t *testing.T) {
	if err := run([]string{"-algo", "nocd", "-graph", "star", "-n", "16"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{name: "unknown algo", args: []string{"-algo", "bogus"}},
		{name: "unknown graph", args: []string{"-graph", "bogus"}},
		{name: "bad flag", args: []string{"-definitely-not-a-flag"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := run(tt.args); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestSolverLookup(t *testing.T) {
	for _, name := range []string{"cd", "beep", "nocd", "lowdegree", "naive-cd", "naive-nocd", "unknown-delta"} {
		if _, err := solver(name); err != nil {
			t.Errorf("solver(%q): %v", name, err)
		}
	}
	if _, err := solver("nope"); err == nil {
		t.Error("unknown solver accepted")
	}
}
