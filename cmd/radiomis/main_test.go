package main

import (
	"errors"
	"testing"

	"radiomis/internal/radio"
)

func TestRunSmallCD(t *testing.T) {
	if err := run([]string{"-algo", "cd", "-graph", "cycle", "-n", "32", "-trials", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunVerbose(t *testing.T) {
	if err := run([]string{"-algo", "beep", "-graph", "grid", "-n", "16", "-v"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunNoCDSmall(t *testing.T) {
	if err := run([]string{"-algo", "nocd", "-graph", "star", "-n", "16"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{name: "unknown algo", args: []string{"-algo", "bogus"}},
		{name: "unknown graph", args: []string{"-graph", "bogus"}},
		{name: "bad flag", args: []string{"-definitely-not-a-flag"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := run(tt.args); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestSolverLookup(t *testing.T) {
	for _, name := range []string{"cd", "beep", "nocd", "lowdegree", "naive-cd", "naive-nocd", "unknown-delta"} {
		if _, err := solver(name); err != nil {
			t.Errorf("solver(%q): %v", name, err)
		}
	}
	if _, err := solver("nope"); err == nil {
		t.Error("unknown solver accepted")
	}
}

func TestRunWithFaults(t *testing.T) {
	if err := run([]string{"-algo", "cd", "-graph", "gnp", "-n", "48",
		"-faults", "loss=0.2,crash=0.01,restart=8", "-trials", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadFaultSpec(t *testing.T) {
	for _, spec := range []string{"loss=2", "bogus=1", "loss"} {
		if err := run([]string{"-faults", spec, "-n", "8"}); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
}

func TestRunTimeoutSurfacesErrAborted(t *testing.T) {
	err := run([]string{"-algo", "cd", "-graph", "gnp", "-n", "4096", "-timeout", "1ns"})
	if !errors.Is(err, radio.ErrAborted) {
		t.Fatalf("err = %v, want radio.ErrAborted", err)
	}
}
