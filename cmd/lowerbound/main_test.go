package main

import "testing"

func TestRunSmall(t *testing.T) {
	if err := run([]string{"-n", "64", "-trials", "5", "-max-budget", "4"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestNextBudget(t *testing.T) {
	if nextBudget(3) != 4 {
		t.Error("dense step wrong")
	}
	if nextBudget(8) != 16 {
		t.Error("geometric step wrong")
	}
}
