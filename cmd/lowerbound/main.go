// Command lowerbound explores the Theorem 1 energy lower bound: it sweeps
// the per-node energy budget on the n/4-matching + n/2-isolated graph and
// prints the analytic failure bound next to the measured failure rates of
// oblivious strategies and of the truncated CD algorithm.
//
// Usage:
//
//	lowerbound -n 1024 -trials 200
//	lowerbound -n 4096 -max-budget 40
package main

import (
	"flag"
	"fmt"
	"os"

	"radiomis/internal/lowerbound"
	"radiomis/internal/texttable"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "lowerbound:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("lowerbound", flag.ContinueOnError)
	var (
		n         = fs.Int("n", 1024, "network size (rounded down to a multiple of 4)")
		trials    = fs.Int("trials", 100, "trials per budget")
		maxBudget = fs.Int("max-budget", 0, "largest budget to test (default 6·log₂ n)")
		seed      = fs.Uint64("seed", 1, "random seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	threshold := lowerbound.MinimumEnergy(*n)
	limit := *maxBudget
	if limit <= 0 {
		limit = int(12 * threshold)
	}
	fmt.Printf("Theorem 1 on n=%d: any MIS algorithm with success > e^(-1/4) needs ≥ ½·log₂ n = %.1f energy\n\n",
		*n, threshold)

	table := texttable.New("budget b", "analytic bound", "oblivious fail", "truncated-CD fail")
	for b := 1; b <= limit; b = nextBudget(b) {
		obl, err := lowerbound.FailureProbOblivious(lowerbound.Config{
			N: *n, Budget: b, Trials: *trials, Seed: *seed,
		})
		if err != nil {
			return err
		}
		trunc, err := lowerbound.FailureProbTruncatedCD(lowerbound.Config{
			N: *n, Budget: b, Trials: *trials, Seed: *seed + 1,
		})
		if err != nil {
			return err
		}
		table.AddRow(b, lowerbound.AnalyticBound(*n, b), obl, trunc)
	}
	return table.Render(os.Stdout)
}

// nextBudget walks budgets densely near the threshold and geometrically
// beyond it.
func nextBudget(b int) int {
	if b < 8 {
		return b + 1
	}
	return b * 2
}
