#!/usr/bin/env python3
"""Compare two benchsuite -json reports metric by metric.

Usage: benchdiff.py BASELINE.json CURRENT.json

The suite is deterministic at a fixed seed, so any drift in a metric
summary (count/mean/std/min/max/median/p90 per (series, x, metric) point)
means the simulation's behavior changed. Wall-clock fields (durationMs)
are ignored. Exits 0 when every shared metric point matches, 1 on any
difference, missing experiment, or missing point — CI runs this as a
warn-only step so intentional changes just need a regenerated baseline.
"""

import json
import sys


def metric_points(report):
    """Flatten a report into {(experiment, series, x, metric): summary}."""
    points = {}
    for exp in report.get("experiments", []):
        for pt in exp.get("metrics", []):
            key = (exp["id"], pt["series"], pt["x"], pt["metric"])
            points[key] = pt["summary"]
    return points


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__.strip())
    with open(sys.argv[1]) as f:
        baseline = json.load(f)
    with open(sys.argv[2]) as f:
        current = json.load(f)

    base = metric_points(baseline)
    cur = metric_points(current)
    drifted = 0

    for key in sorted(base):
        if key not in cur:
            print(f"MISSING  {'/'.join(map(str, key))}: point absent from current run")
            drifted += 1
            continue
        if base[key] != cur[key]:
            print(f"DRIFT    {'/'.join(map(str, key))}:")
            print(f"  baseline: {base[key]}")
            print(f"  current:  {cur[key]}")
            drifted += 1
    for key in sorted(set(cur) - set(base)):
        print(f"NEW      {'/'.join(map(str, key))}: not in baseline (regenerate it?)")

    total = len(base)
    if drifted:
        print(f"\n{drifted}/{total} metric points drifted from the baseline.")
        print("If the change is intentional, regenerate with:")
        print("  go run ./cmd/benchsuite -quick -seed 1 -json BENCH_baseline.json")
        sys.exit(1)
    print(f"All {total} baseline metric points match.")


if __name__ == "__main__":
    main()
