#!/usr/bin/env python3
"""Compare two benchsuite -json reports metric by metric.

Usage: benchdiff.py BASELINE.json CURRENT.json
       benchdiff.py --lockstep [BENCH_OUTPUT.txt]

The suite is deterministic at a fixed seed, so any drift in a metric
summary (count/mean/std/min/max/median/p90 per (series, x, metric) point)
means the simulation's behavior changed. Wall-clock fields (durationMs)
are ignored. Exits 0 when every shared metric point matches, 1 on any
difference, missing experiment, or missing point — CI runs this as a
warn-only step so intentional changes just need a regenerated baseline.

Reports may also carry a per-experiment "perf" section (trial wall-time
histogram summaries). Perf numbers are hardware- and load-dependent, so
they are compared informationally only: mean-trial-time drift beyond
±20% prints a PERF warning but never changes the exit code.

With --lockstep the input is `go test -bench BenchmarkRun -benchmem`
output covering both BenchmarkRun and BenchmarkRunLockstep (a file
argument or stdin), and the check is the lockstep engine's throughput
contract: on every shared workload, lockstep-pooled trials/s must be at
least LOCKSTEP_FLOOR (5×) the pooled scalar engine's — a hard failure —
and below LOCKSTEP_TARGET (10×) it prints a warn-only line. The maximum
across -count repeats is compared on both sides: throughput noise only
ever subtracts, so the max is the least-noisy estimate of each engine.
"""

import json
import sys


def metric_points(report):
    """Flatten a report into {(experiment, series, x, metric): summary}."""
    points = {}
    for exp in report.get("experiments", []):
        for pt in exp.get("metrics", []):
            key = (exp["id"], pt["series"], pt["x"], pt["metric"])
            points[key] = pt["summary"]
    return points


PERF_DRIFT = 0.20  # warn when mean trial time moves more than ±20%


def perf_sections(report):
    """Flatten a report into {experiment: perf section} (absent ones skipped)."""
    return {
        exp["id"]: exp["perf"]
        for exp in report.get("experiments", [])
        if exp.get("perf")
    }


def warn_perf_drift(baseline, current):
    """Print warn-only PERF lines for wall-time drift; never affects exit."""
    base, cur = perf_sections(baseline), perf_sections(current)
    for exp_id in sorted(set(base) & set(cur)):
        b, c = base[exp_id]["trialMs"]["mean"], cur[exp_id]["trialMs"]["mean"]
        if b <= 0:
            continue
        drift = (c - b) / b
        if abs(drift) > PERF_DRIFT:
            print(
                f"PERF     {exp_id}: mean trial time {b:.2f}ms -> {c:.2f}ms "
                f"({drift:+.0%}; informational, threshold ±{PERF_DRIFT:.0%})"
            )


import re

LOCKSTEP_FLOOR = 5.0  # hard minimum lockstep/scalar trials/s ratio
LOCKSTEP_TARGET = 10.0  # warn (not fail) below this ratio

BENCH_LINE = re.compile(
    r"^(?P<bench>BenchmarkRun|BenchmarkRunLockstep)"
    r"/(?P<engine>[\w-]+)/(?P<work>[\w=/.]+?)(?:-\d+)?\s+\d+\s+(?P<metrics>.*)$"
)
TRIALS_PER_SEC = re.compile(r"([\d.e+]+) trials/s")


def lockstep_main(src):
    """--lockstep mode: enforce the lockstep engine's throughput floor."""
    best = {}  # (bench, engine, workload) -> max trials/s across repeats
    for line in src:
        m = BENCH_LINE.match(line.strip())
        if not m:
            continue
        t = TRIALS_PER_SEC.search(m.group("metrics"))
        if not t:
            continue
        key = (m.group("bench"), m.group("engine"), m.group("work"))
        best[key] = max(best.get(key, 0.0), float(t.group(1)))

    scalar = {w: v for (b, e, w), v in best.items() if b == "BenchmarkRun" and e == "pooled"}
    lockstep = {
        w: v
        for (b, e, w), v in best.items()
        if b == "BenchmarkRunLockstep" and e == "lockstep-pooled"
    }
    shared = sorted(set(scalar) & set(lockstep))
    if not shared:
        print(
            "benchdiff --lockstep: no shared pooled/lockstep-pooled workloads found "
            "(run both BenchmarkRun and BenchmarkRunLockstep with trials/s metrics)",
            file=sys.stderr,
        )
        return 1

    ok = True
    for work in shared:
        base, fast = scalar[work], lockstep[work]
        if base <= 0:
            continue
        ratio = fast / base
        if ratio < LOCKSTEP_FLOOR:
            status, ok = "REGRESSION", False
        elif ratio < LOCKSTEP_TARGET:
            status = "WARN"
        else:
            status = "ok"
        print(
            f"{status:10}  {work}: scalar={base:.1f} lockstep={fast:.1f} trials/s "
            f"({ratio:.1f}x; floor {LOCKSTEP_FLOOR:.0f}x, target {LOCKSTEP_TARGET:.0f}x)"
        )
    if not ok:
        print(
            f"benchdiff --lockstep: lockstep throughput fell below the hard "
            f"{LOCKSTEP_FLOOR:.0f}x floor over the pooled scalar engine",
            file=sys.stderr,
        )
        return 1
    print(f"benchdiff --lockstep: floor holds across {len(shared)} workloads")
    return 0


def main():
    if "--lockstep" in sys.argv:
        argv = [a for a in sys.argv if a != "--lockstep"]
        sys.exit(lockstep_main(open(argv[1]) if len(argv) > 1 else sys.stdin))
    if len(sys.argv) != 3:
        sys.exit(__doc__.strip())
    with open(sys.argv[1]) as f:
        baseline = json.load(f)
    with open(sys.argv[2]) as f:
        current = json.load(f)

    base = metric_points(baseline)
    cur = metric_points(current)
    drifted = 0

    for key in sorted(base):
        if key not in cur:
            print(f"MISSING  {'/'.join(map(str, key))}: point absent from current run")
            drifted += 1
            continue
        if base[key] != cur[key]:
            print(f"DRIFT    {'/'.join(map(str, key))}:")
            print(f"  baseline: {base[key]}")
            print(f"  current:  {cur[key]}")
            drifted += 1
    for key in sorted(set(cur) - set(base)):
        print(f"NEW      {'/'.join(map(str, key))}: not in baseline (regenerate it?)")

    warn_perf_drift(baseline, current)

    total = len(base)
    if drifted:
        print(f"\n{drifted}/{total} metric points drifted from the baseline.")
        print("If the change is intentional, regenerate with:")
        print("  go run ./cmd/benchsuite -quick -seed 1 -json BENCH_baseline.json")
        sys.exit(1)
    print(f"All {total} baseline metric points match.")


if __name__ == "__main__":
    main()
