#!/usr/bin/env python3
"""Submit a radiomisd job and validate cluster-mode result parity.

`run BASE` submits one solve job to the daemon at BASE (host:port or full
URL), polls it to completion, and prints the job's `result` object as
canonical JSON (sorted keys, no whitespace) on stdout. Run it once
against a coordinator and once against a plain single-node daemon, at the
same seed, and the two outputs must be byte-identical — the coordinator's
merge contract.

`compare A.json B.json` asserts exactly that: the two files parse to
equal JSON. On mismatch it prints the first differing path and exits 1.

`status BASE` fetches GET /v1/cluster and prints it; with
`--min-stolen N` it additionally asserts at least N shards were stolen
(the CI smoke test kills a worker mid-job and proves the steal happened).

`federation COORD --workers W1,W2` asserts the coordinator's federated
telemetry is the true merge of its workers: for the given metric family
(default the trial-duration histogram), the merged count in the
coordinator's /v1/cluster federation section must equal the sum of the
counts the workers themselves report on /v1/telemetry, and the
coordinator's /metrics exposition must carry per-worker samples plus the
worker="cluster" aggregate. Retries until --timeout to ride out the
federation poll interval.

`shardstream BASE` submits a solve job and follows its /events stream,
asserting the coordinator re-emits worker shard progress with attribution:
every shard must report running before done, and with `--min-workers N`
the events must name at least N distinct workers.

Exit status: 0 on success, 1 on any failure. Stdlib only.
"""
import argparse
import json
import sys
import time
import urllib.error
import urllib.request


def base_url(base):
    if not base.startswith("http"):
        base = "http://" + base
    return base.rstrip("/")


def get_json(url, timeout=10):
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return json.load(resp)


def post_json(url, payload, timeout=10):
    req = urllib.request.Request(
        url,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(req, timeout=timeout) as resp:
        return json.load(resp)


def canonical(obj):
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def cmd_run(args):
    base = base_url(args.base)
    payload = {
        "kind": "solve",
        "algorithm": args.algorithm,
        "n": args.n,
        "trials": args.trials,
        "seed": args.seed,
    }
    st = post_json(base + "/v1/jobs", payload)
    job_id = st["id"]
    print(f"submitted {job_id} to {base}", file=sys.stderr)

    deadline = time.monotonic() + args.timeout
    while time.monotonic() < deadline:
        st = get_json(f"{base}/v1/jobs/{job_id}")
        state = st["state"]
        if state == "done":
            print(canonical(st["result"]))
            return 0
        if state in ("failed", "canceled"):
            print(f"job {job_id} ended {state}: {st.get('error', '')}", file=sys.stderr)
            return 1
        time.sleep(0.25)
    print(f"job {job_id} did not finish within {args.timeout}s", file=sys.stderr)
    return 1


def diff_path(a, b, path="$"):
    """Return the first path where a and b differ, or None."""
    if type(a) is not type(b):
        return f"{path}: type {type(a).__name__} != {type(b).__name__}"
    if isinstance(a, dict):
        for k in sorted(set(a) | set(b)):
            if k not in a:
                return f"{path}.{k}: only in second"
            if k not in b:
                return f"{path}.{k}: only in first"
            d = diff_path(a[k], b[k], f"{path}.{k}")
            if d:
                return d
        return None
    if isinstance(a, list):
        if len(a) != len(b):
            return f"{path}: length {len(a)} != {len(b)}"
        for i, (x, y) in enumerate(zip(a, b)):
            d = diff_path(x, y, f"{path}[{i}]")
            if d:
                return d
        return None
    if a != b:
        return f"{path}: {a!r} != {b!r}"
    return None


def cmd_compare(args):
    with open(args.a) as f:
        a = json.load(f)
    with open(args.b) as f:
        b = json.load(f)
    if canonical(a) == canonical(b):
        print(f"results identical: {args.a} == {args.b}")
        return 0
    d = diff_path(a, b) or "(unknown difference)"
    print(f"results differ: {d}", file=sys.stderr)
    return 1


def cmd_status(args):
    base = base_url(args.base)
    st = get_json(base + "/v1/cluster")
    print(json.dumps(st, indent=2))
    if args.min_stolen is not None and st.get("shardsStolen", 0) < args.min_stolen:
        print(
            f"shardsStolen = {st.get('shardsStolen', 0)}, want >= {args.min_stolen}",
            file=sys.stderr,
        )
        return 1
    return 0


def family_count(snapshot, name):
    """Observation count of family `name` in a telemetry snapshot: the
    histogram count, the counter value, or the sum of a vec's children."""
    for fam in snapshot.get("families", []):
        if fam.get("name") != name:
            continue
        if fam.get("hist") is not None:
            return fam["hist"].get("count", 0)
        if fam.get("counter") is not None:
            return fam["counter"]
        if fam.get("children"):
            return sum(ch.get("count", 0) for ch in fam["children"])
    return 0


def cmd_federation(args):
    coord = base_url(args.base)
    workers = [base_url(w) for w in args.workers.split(",") if w.strip()]
    if not workers:
        print("federation: --workers is required", file=sys.stderr)
        return 1

    deadline = time.monotonic() + args.timeout
    last = None
    while time.monotonic() < deadline:
        want = sum(family_count(get_json(w + "/v1/telemetry"), args.family) for w in workers)
        fed = get_json(coord + "/v1/cluster").get("federation")
        merged = (fed or {}).get("merged")
        got = family_count(merged or {}, args.family)
        last = f"merged {args.family} count = {got}, workers sum = {want}"
        if fed is None:
            last = "no federation section in /v1/cluster (is -federate-interval set?)"
        elif want > 0 and got == want:
            break
        time.sleep(0.5)
    else:
        print(f"federation never converged: {last}", file=sys.stderr)
        return 1
    print(f"federation: {last}")

    # The federated exposition must attribute every worker and aggregate
    # the fleet under worker="cluster".
    with urllib.request.urlopen(coord + "/metrics", timeout=10) as resp:
        metrics = resp.read().decode()
    ok = True
    for label in workers + ["cluster"]:
        needle = f'worker="{label}"'
        if needle not in metrics:
            print(f"/metrics has no samples with {needle}", file=sys.stderr)
            ok = False
    for line in metrics.splitlines():
        if line.startswith(args.family) and 'worker="cluster"' in line and line.endswith(f" {want}"):
            break
    else:
        print(
            f"/metrics lacks a {args.family} worker=\"cluster\" sample with value {want}",
            file=sys.stderr,
        )
        ok = False
    if ok:
        print(f"federation: /metrics carries per-worker and cluster-aggregate samples")
    return 0 if ok else 1


def cmd_shardstream(args):
    base = base_url(args.base)
    payload = {
        "kind": "solve",
        "algorithm": args.algorithm,
        "n": args.n,
        "trials": args.trials,
        "seed": args.seed,
    }
    st = post_json(base + "/v1/jobs", payload)
    job_id = st["id"]
    print(f"submitted {job_id} to {base}", file=sys.stderr)

    shard_events = []
    terminal = None
    with urllib.request.urlopen(
        f"{base}/v1/jobs/{job_id}/events", timeout=args.timeout
    ) as resp:
        for raw in resp:
            ev = json.loads(raw)
            if ev.get("ev") == "shard":
                shard_events.append(ev)
            if ev.get("ev") == "state" and ev.get("state") in ("done", "failed", "canceled"):
                terminal = ev["state"]
                break
    if terminal != "done":
        print(f"job {job_id} ended {terminal}", file=sys.stderr)
        return 1
    if not shard_events:
        print("no shard events on the stream — is this a coordinator?", file=sys.stderr)
        return 1

    workers = {ev.get("worker") for ev in shard_events} - {"coordinator"}
    ran, done = set(), set()
    progress = 0
    for i, ev in enumerate(shard_events):
        sh = ev.get("shard")
        state = ev.get("state", "")
        if state == "running":
            ran.add(sh)
        elif state == "done":
            if sh not in ran:
                print(f"shard {sh} reported done before running", file=sys.stderr)
                return 1
            done.add(sh)
        elif state == "" and ev.get("stage"):
            progress += 1
    trials_done = sum(
        ev.get("trials", 0) for ev in shard_events if ev.get("state") == "done"
    )
    if trials_done != args.trials:
        print(
            f"done shards cover {trials_done} trials, want {args.trials}", file=sys.stderr
        )
        return 1
    if len(workers) < args.min_workers:
        print(
            f"shard events name {len(workers)} workers ({sorted(workers)}), "
            f"want >= {args.min_workers}",
            file=sys.stderr,
        )
        return 1
    print(
        f"shardstream: {len(shard_events)} shard events, {len(done)} shards done "
        f"across {len(workers)} workers, {progress} attributed progress lines"
    )
    return 0


def main():
    p = argparse.ArgumentParser(description=__doc__)
    sub = p.add_subparsers(dest="cmd", required=True)

    run = sub.add_parser("run", help="submit a solve job, print its result JSON")
    run.add_argument("base")
    run.add_argument("--algorithm", default="cd")
    run.add_argument("--n", type=int, default=2000)
    run.add_argument("--trials", type=int, default=24)
    run.add_argument("--seed", type=int, default=7)
    run.add_argument("--timeout", type=float, default=300)
    run.set_defaults(fn=cmd_run)

    cmp_ = sub.add_parser("compare", help="assert two result files are identical")
    cmp_.add_argument("a")
    cmp_.add_argument("b")
    cmp_.set_defaults(fn=cmd_compare)

    status = sub.add_parser("status", help="print /v1/cluster, optionally assert steals")
    status.add_argument("base")
    status.add_argument("--min-stolen", type=int, default=None)
    status.set_defaults(fn=cmd_status)

    fed = sub.add_parser(
        "federation", help="assert federated telemetry equals the merge of the workers"
    )
    fed.add_argument("base", help="coordinator URL")
    fed.add_argument("--workers", required=True, help="comma-separated worker URLs")
    fed.add_argument("--family", default="radiomis_trial_duration_seconds")
    fed.add_argument("--timeout", type=float, default=30)
    fed.set_defaults(fn=cmd_federation)

    stream = sub.add_parser(
        "shardstream", help="submit a job and assert attributed shard events on /events"
    )
    stream.add_argument("base", help="coordinator URL")
    stream.add_argument("--algorithm", default="cd")
    stream.add_argument("--n", type=int, default=2000)
    stream.add_argument("--trials", type=int, default=24)
    stream.add_argument("--seed", type=int, default=11)
    stream.add_argument("--min-workers", type=int, default=1)
    stream.add_argument("--timeout", type=float, default=300)
    stream.set_defaults(fn=cmd_shardstream)

    args = p.parse_args()
    try:
        sys.exit(args.fn(args))
    except (urllib.error.URLError, OSError) as e:
        print(f"clustercheck: {e}", file=sys.stderr)
        sys.exit(1)


if __name__ == "__main__":
    main()
