#!/usr/bin/env python3
"""Submit a radiomisd job and validate cluster-mode result parity.

`run BASE` submits one solve job to the daemon at BASE (host:port or full
URL), polls it to completion, and prints the job's `result` object as
canonical JSON (sorted keys, no whitespace) on stdout. Run it once
against a coordinator and once against a plain single-node daemon, at the
same seed, and the two outputs must be byte-identical — the coordinator's
merge contract.

`compare A.json B.json` asserts exactly that: the two files parse to
equal JSON. On mismatch it prints the first differing path and exits 1.

`status BASE` fetches GET /v1/cluster and prints it; with
`--min-stolen N` it additionally asserts at least N shards were stolen
(the CI smoke test kills a worker mid-job and proves the steal happened).

Exit status: 0 on success, 1 on any failure. Stdlib only.
"""
import argparse
import json
import sys
import time
import urllib.error
import urllib.request


def base_url(base):
    if not base.startswith("http"):
        base = "http://" + base
    return base.rstrip("/")


def get_json(url, timeout=10):
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return json.load(resp)


def post_json(url, payload, timeout=10):
    req = urllib.request.Request(
        url,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(req, timeout=timeout) as resp:
        return json.load(resp)


def canonical(obj):
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def cmd_run(args):
    base = base_url(args.base)
    payload = {
        "kind": "solve",
        "algorithm": args.algorithm,
        "n": args.n,
        "trials": args.trials,
        "seed": args.seed,
    }
    st = post_json(base + "/v1/jobs", payload)
    job_id = st["id"]
    print(f"submitted {job_id} to {base}", file=sys.stderr)

    deadline = time.monotonic() + args.timeout
    while time.monotonic() < deadline:
        st = get_json(f"{base}/v1/jobs/{job_id}")
        state = st["state"]
        if state == "done":
            print(canonical(st["result"]))
            return 0
        if state in ("failed", "canceled"):
            print(f"job {job_id} ended {state}: {st.get('error', '')}", file=sys.stderr)
            return 1
        time.sleep(0.25)
    print(f"job {job_id} did not finish within {args.timeout}s", file=sys.stderr)
    return 1


def diff_path(a, b, path="$"):
    """Return the first path where a and b differ, or None."""
    if type(a) is not type(b):
        return f"{path}: type {type(a).__name__} != {type(b).__name__}"
    if isinstance(a, dict):
        for k in sorted(set(a) | set(b)):
            if k not in a:
                return f"{path}.{k}: only in second"
            if k not in b:
                return f"{path}.{k}: only in first"
            d = diff_path(a[k], b[k], f"{path}.{k}")
            if d:
                return d
        return None
    if isinstance(a, list):
        if len(a) != len(b):
            return f"{path}: length {len(a)} != {len(b)}"
        for i, (x, y) in enumerate(zip(a, b)):
            d = diff_path(x, y, f"{path}[{i}]")
            if d:
                return d
        return None
    if a != b:
        return f"{path}: {a!r} != {b!r}"
    return None


def cmd_compare(args):
    with open(args.a) as f:
        a = json.load(f)
    with open(args.b) as f:
        b = json.load(f)
    if canonical(a) == canonical(b):
        print(f"results identical: {args.a} == {args.b}")
        return 0
    d = diff_path(a, b) or "(unknown difference)"
    print(f"results differ: {d}", file=sys.stderr)
    return 1


def cmd_status(args):
    base = base_url(args.base)
    st = get_json(base + "/v1/cluster")
    print(json.dumps(st, indent=2))
    if args.min_stolen is not None and st.get("shardsStolen", 0) < args.min_stolen:
        print(
            f"shardsStolen = {st.get('shardsStolen', 0)}, want >= {args.min_stolen}",
            file=sys.stderr,
        )
        return 1
    return 0


def main():
    p = argparse.ArgumentParser(description=__doc__)
    sub = p.add_subparsers(dest="cmd", required=True)

    run = sub.add_parser("run", help="submit a solve job, print its result JSON")
    run.add_argument("base")
    run.add_argument("--algorithm", default="cd")
    run.add_argument("--n", type=int, default=2000)
    run.add_argument("--trials", type=int, default=24)
    run.add_argument("--seed", type=int, default=7)
    run.add_argument("--timeout", type=float, default=300)
    run.set_defaults(fn=cmd_run)

    cmp_ = sub.add_parser("compare", help="assert two result files are identical")
    cmp_.add_argument("a")
    cmp_.add_argument("b")
    cmp_.set_defaults(fn=cmd_compare)

    status = sub.add_parser("status", help="print /v1/cluster, optionally assert steals")
    status.add_argument("base")
    status.add_argument("--min-stolen", type=int, default=None)
    status.set_defaults(fn=cmd_status)

    args = p.parse_args()
    try:
        sys.exit(args.fn(args))
    except (urllib.error.URLError, OSError) as e:
        print(f"clustercheck: {e}", file=sys.stderr)
        sys.exit(1)


if __name__ == "__main__":
    main()
