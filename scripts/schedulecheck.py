#!/usr/bin/env python3
"""Validate a `radiomis schedule -json` document externally.

Usage: schedulecheck.py [FILE]   (stdin when FILE is omitted)

The document carries the exact conflict-graph edge list alongside the
plan, so this script re-checks the scheduler's invariants with no Go code
in the loop:

  1. partition     — every vertex of [0, n) appears in exactly one batch;
  2. independence  — no edge has both endpoints in the same batch;
  3. maximal peel  — a vertex in batch l has, for every earlier batch k,
                     a neighbor in batch k (each layer was a *maximal*
                     independent set of its residual);
  4. stats         — the embedded stats match the batches.

Exit status: 0 when every invariant holds, 1 otherwise.
"""
import json
import sys

SCHEMA = "radiomis.schedule/v1"


def fail(msg):
    print(f"schedulecheck: FAIL: {msg}", file=sys.stderr)
    return 1


def main(argv):
    src = open(argv[1]) if len(argv) > 1 else sys.stdin
    doc = json.load(src)

    if doc.get("schema") != SCHEMA:
        return fail(f"schema = {doc.get('schema')!r}, want {SCHEMA!r}")
    n = doc["n"]
    batches = doc["batches"]
    adj = [set() for _ in range(n)]
    for u, v in doc["edges"]:
        adj[u].add(v)
        adj[v].add(u)

    # 1. partition
    layer = [-1] * n
    for i, batch in enumerate(batches):
        for v in batch:
            if not 0 <= v < n:
                return fail(f"batch {i}: vertex {v} out of range [0,{n})")
            if layer[v] != -1:
                return fail(f"vertex {v} in batches {layer[v]} and {i}")
            layer[v] = i
    missing = [v for v in range(n) if layer[v] == -1]
    if missing:
        return fail(f"{len(missing)} vertices unscheduled (first: {missing[0]})")

    # 2. independence
    for i, batch in enumerate(batches):
        members = set(batch)
        for v in batch:
            hit = adj[v] & members
            if hit:
                return fail(f"edge {{{v},{hit.pop()}}} inside batch {i}")

    # 3. maximal peeling
    for v in range(n):
        earlier = {layer[w] for w in adj[v] if layer[w] < layer[v]}
        for k in range(layer[v]):
            if k not in earlier:
                return fail(
                    f"vertex {v} (batch {layer[v]}) has no neighbor in "
                    f"earlier batch {k} — batch {k} was not maximal"
                )

    # 4. stats consistency
    stats = doc["stats"]
    sizes = [len(b) for b in batches]
    want = {
        "batches": len(batches),
        "maxBatch": max(sizes, default=0),
        "vertices": sum(sizes),
    }
    for key, val in want.items():
        if stats[key] != val:
            return fail(f"stats.{key} = {stats[key]}, want {val}")
    mean = stats["meanBatch"]
    want_mean = sum(sizes) / len(batches) if batches else 0.0
    if abs(mean - want_mean) > 1e-9:
        return fail(f"stats.meanBatch = {mean}, want {want_mean}")

    print(
        f"schedulecheck: ok — algorithm={doc['algorithm']} n={n} "
        f"edges={len(doc['edges'])} batches={len(batches)} "
        f"maxBatch={want['maxBatch']}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
