#!/usr/bin/env python3
"""Check that telemetry collection adds no allocations to the engine.

Reads `go test -bench BenchmarkRun -benchmem` output (a file argument or
stdin) and asserts that, for every workload size, the "perf" engine variant
(pooled scheduler with a RunPerf sink attached) reports allocs/op no worse
than the plain "pooled" variant. Worker-side buffer growth makes allocs/op
mildly scheduling-dependent, so when the input holds several runs per
variant (-count=N) the minimum is compared — noise only ever adds
allocations — under a small relative slack.

This is the coarse CI guard against gross telemetry regressions (a
per-round or per-node allocation inflates allocs/op by thousands). The
fine-grained zero-alloc contract — under one alloc per 100 rounds — is
enforced deterministically by TestPerfDisabledAddsNoAllocs and
TestPerfEnabledAddsNoPerRoundAllocs in internal/radio.

Exit status: 0 if every workload is within slack (and at least one was
seen), 1 otherwise.
"""
import re
import sys

LINE = re.compile(
    r"^BenchmarkRun/(?P<engine>[\w-]+)/(?P<work>[\w=/.]+?)(?:-\d+)?\s+\d+\s+(?P<metrics>.*)$"
)
ALLOCS = re.compile(r"(\d+) allocs/op")

# Allowed allocs/op increase of "perf" over "pooled": a constant for the
# per-run timing closure plus a relative term for scheduling jitter.
SLACK_ABS = 16
SLACK_REL = 0.03


def main(argv):
    src = open(argv[1]) if len(argv) > 1 else sys.stdin
    seen = {}  # workload -> {engine: min allocs/op across repeats}
    for line in src:
        m = LINE.match(line.strip())
        if not m:
            continue
        a = ALLOCS.search(m.group("metrics"))
        if not a:
            continue
        work, engine, allocs = m.group("work"), m.group("engine"), int(a.group(1))
        engines = seen.setdefault(work, {})
        engines[engine] = min(engines.get(engine, allocs), allocs)

    pairs = {w: e for w, e in seen.items() if "pooled" in e and "perf" in e}
    if not pairs:
        print(
            "benchallocs: no pooled/perf BenchmarkRun pairs found "
            "(did you pass -benchmem?)",
            file=sys.stderr,
        )
        return 1

    ok = True
    for work, engines in sorted(pairs.items()):
        pooled, perf = engines["pooled"], engines["perf"]
        slack = SLACK_ABS + int(SLACK_REL * pooled)
        delta = perf - pooled
        status = "ok" if delta <= slack else "REGRESSION"
        if delta > slack:
            ok = False
        print(
            f"{status:10}  {work}: pooled={pooled} perf={perf} allocs/op "
            f"(delta {delta:+d}, slack {slack})"
        )
    if not ok:
        print(
            "benchallocs: telemetry allocs/op regressed beyond slack — "
            "RunPerf's no-allocation contract is likely broken",
            file=sys.stderr,
        )
        return 1
    print(f"benchallocs: telemetry allocation-neutral across {len(pairs)} workloads")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
