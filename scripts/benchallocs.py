#!/usr/bin/env python3
"""Check the repo's benchmark allocation contracts.

Default mode reads `go test -bench BenchmarkRun -benchmem` output (a file
argument or stdin) and asserts that, for every workload size, the "perf"
engine variant (pooled scheduler with a RunPerf sink attached) reports
allocs/op no worse than the plain "pooled" variant. Worker-side buffer
growth makes allocs/op mildly scheduling-dependent, so when the input
holds several runs per variant (-count=N) the minimum is compared — noise
only ever adds allocations — under a small relative slack.

With --solvebatch the input is `go test -bench BenchmarkSolveBatch
-benchmem` output instead, and the check is the batch scheduler's serving
contract: the warm "planner" variant must report exactly 0 allocs/op on
every workload (minimum across -count repeats). A single steady-state
allocation per call breaks the high-throughput schedule path's promise.

With --lockstep the input is `go test -bench BenchmarkRunLockstep
-benchmem` output, and the check is the lockstep engine's lane-path
contract: the pooled variant's steady-state allocs/op (one op = one
64-lane batch, minimum across -count repeats) must stay within a fixed
per-batch budget. The budget covers the per-lane Result objects and batch
bookkeeping; a per-round or per-(node, lane) allocation on the hot path
inflates allocs/op by orders of magnitude and fails the gate.

This is the coarse CI guard against gross regressions (a per-round or
per-vertex allocation inflates allocs/op by thousands). The fine-grained
contracts are enforced deterministically by TestPerfDisabledAddsNoAllocs /
TestPerfEnabledAddsNoPerRoundAllocs in internal/radio and
TestBatchesZeroAllocSteadyState in internal/schedule.

Exit status: 0 if every workload passes (and at least one was seen), 1
otherwise.
"""
import re
import sys

LINE = re.compile(
    r"^BenchmarkRun/(?P<engine>[\w-]+)/(?P<work>[\w=/.]+?)(?:-\d+)?\s+\d+\s+(?P<metrics>.*)$"
)
SOLVE_LINE = re.compile(
    r"^BenchmarkSolveBatch/(?P<variant>[\w-]+)/(?P<work>[\w=/.]+?)(?:-\d+)?\s+\d+\s+(?P<metrics>.*)$"
)
LOCKSTEP_LINE = re.compile(
    r"^BenchmarkRunLockstep/(?P<variant>[\w-]+)/(?P<work>[\w=/.]+?)(?:-\d+)?\s+\d+\s+(?P<metrics>.*)$"
)
ALLOCS = re.compile(r"(\d+) allocs/op")

# Steady-state allocs/op budget for one pooled 64-lane lockstep batch:
# 64 per-lane Result objects plus batch bookkeeping (~90 today), with
# headroom for small structural changes. A per-round allocation would
# cost thousands per op and trips this immediately.
LANE_ALLOC_BUDGET = 256

# Allowed allocs/op increase of "perf" over "pooled": a constant for the
# per-run timing closure plus a relative term for scheduling jitter.
SLACK_ABS = 16
SLACK_REL = 0.03


def solvebatch_main(src):
    """--solvebatch mode: the warm planner variant must be zero-alloc."""
    seen = {}  # workload -> {variant: min allocs/op across repeats}
    for line in src:
        m = SOLVE_LINE.match(line.strip())
        if not m:
            continue
        a = ALLOCS.search(m.group("metrics"))
        if not a:
            continue
        work, variant, allocs = m.group("work"), m.group("variant"), int(a.group(1))
        variants = seen.setdefault(work, {})
        variants[variant] = min(variants.get(variant, allocs), allocs)

    planner = {w: v["planner"] for w, v in seen.items() if "planner" in v}
    if not planner:
        print(
            "benchallocs: no BenchmarkSolveBatch/planner lines found "
            "(did you pass -benchmem?)",
            file=sys.stderr,
        )
        return 1
    ok = True
    for work, allocs in sorted(planner.items()):
        status = "ok" if allocs == 0 else "REGRESSION"
        if allocs != 0:
            ok = False
        print(f"{status:10}  {work}: planner={allocs} allocs/op (want 0)")
    if not ok:
        print(
            "benchallocs: the warm batch planner allocates per call — "
            "the zero-allocation serving contract is broken",
            file=sys.stderr,
        )
        return 1
    print(f"benchallocs: planner zero-alloc across {len(planner)} workloads")
    return 0


def lockstep_main(src):
    """--lockstep mode: the pooled lane path stays within its alloc budget."""
    seen = {}  # workload -> {variant: min allocs/op across repeats}
    for line in src:
        m = LOCKSTEP_LINE.match(line.strip())
        if not m:
            continue
        a = ALLOCS.search(m.group("metrics"))
        if not a:
            continue
        work, variant, allocs = m.group("work"), m.group("variant"), int(a.group(1))
        variants = seen.setdefault(work, {})
        variants[variant] = min(variants.get(variant, allocs), allocs)

    pooled = {w: v["lockstep-pooled"] for w, v in seen.items() if "lockstep-pooled" in v}
    if not pooled:
        print(
            "benchallocs: no BenchmarkRunLockstep/lockstep-pooled lines found "
            "(did you pass -benchmem?)",
            file=sys.stderr,
        )
        return 1
    ok = True
    for work, allocs in sorted(pooled.items()):
        status = "ok" if allocs <= LANE_ALLOC_BUDGET else "REGRESSION"
        if allocs > LANE_ALLOC_BUDGET:
            ok = False
        print(
            f"{status:10}  {work}: lockstep-pooled={allocs} allocs/op "
            f"(budget {LANE_ALLOC_BUDGET} per 64-lane batch)"
        )
    if not ok:
        print(
            "benchallocs: the pooled lockstep batch allocates beyond its "
            "per-batch budget — a per-round or per-lane hot-path allocation "
            "likely crept in",
            file=sys.stderr,
        )
        return 1
    print(f"benchallocs: lockstep lane path within budget across {len(pooled)} workloads")
    return 0


def main(argv):
    if "--solvebatch" in argv:
        argv = [a for a in argv if a != "--solvebatch"]
        return solvebatch_main(open(argv[1]) if len(argv) > 1 else sys.stdin)
    if "--lockstep" in argv:
        argv = [a for a in argv if a != "--lockstep"]
        return lockstep_main(open(argv[1]) if len(argv) > 1 else sys.stdin)
    src = open(argv[1]) if len(argv) > 1 else sys.stdin
    seen = {}  # workload -> {engine: min allocs/op across repeats}
    for line in src:
        m = LINE.match(line.strip())
        if not m:
            continue
        a = ALLOCS.search(m.group("metrics"))
        if not a:
            continue
        work, engine, allocs = m.group("work"), m.group("engine"), int(a.group(1))
        engines = seen.setdefault(work, {})
        engines[engine] = min(engines.get(engine, allocs), allocs)

    pairs = {w: e for w, e in seen.items() if "pooled" in e and "perf" in e}
    if not pairs:
        print(
            "benchallocs: no pooled/perf BenchmarkRun pairs found "
            "(did you pass -benchmem?)",
            file=sys.stderr,
        )
        return 1

    ok = True
    for work, engines in sorted(pairs.items()):
        pooled, perf = engines["pooled"], engines["perf"]
        slack = SLACK_ABS + int(SLACK_REL * pooled)
        delta = perf - pooled
        status = "ok" if delta <= slack else "REGRESSION"
        if delta > slack:
            ok = False
        print(
            f"{status:10}  {work}: pooled={pooled} perf={perf} allocs/op "
            f"(delta {delta:+d}, slack {slack})"
        )
    if not ok:
        print(
            "benchallocs: telemetry allocs/op regressed beyond slack — "
            "RunPerf's no-allocation contract is likely broken",
            file=sys.stderr,
        )
        return 1
    print(f"benchallocs: telemetry allocation-neutral across {len(pairs)} workloads")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
