#!/usr/bin/env python3
"""Validate a Chrome trace-event export of the span tracer.

Reads a Chrome trace JSON array (a file argument or stdin) — as written
by `radiomisd /debug/traces?format=chrome`, `radiomis -trace`, or
`benchsuite -trace` — and checks the structural invariants the tracing
layer promises:

* the file is a valid JSON array of complete ("ph": "X") events;
* every span event carries traceId/spanId args in lowercase hex of the
  right width (32 / 16 digits);
* parent links connect: every event with a parentSpanId whose parent was
  exported points at an event of the same trace;
* each span name passed via --expect appears at least once;
* each NAME=N passed via --expect-count appears exactly N times (within
  the --trace-id tree when one is given, else across the whole export) —
  e.g. a coordinator fan-out over two workers must show exactly two
  cluster.shard spans;
* with --trace-id, at least one *connected* tree on that exact trace ID
  contains every expected name — the acceptance criterion for the daemon
  round-trip (an inbound traceparent must come back out as one causally
  linked tree, not as disconnected fragments).

Exit status: 0 if all checks pass, 1 otherwise.
"""
import argparse
import json
import re
import sys

HEX32 = re.compile(r"^[0-9a-f]{32}$")
HEX16 = re.compile(r"^[0-9a-f]{16}$")


def fail(msg):
    print(f"tracecheck: {msg}", file=sys.stderr)
    return 1


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("file", nargs="?", help="Chrome trace JSON (default: stdin)")
    ap.add_argument(
        "--expect",
        action="append",
        default=[],
        help="span name that must appear (repeatable)",
    )
    ap.add_argument(
        "--expect-count",
        action="append",
        default=[],
        metavar="NAME=N",
        help="span name that must appear exactly N times (repeatable)",
    )
    ap.add_argument(
        "--trace-id",
        help="require a connected tree on this trace ID containing every --expect name",
    )
    args = ap.parse_args(argv[1:])

    expect_counts = {}
    for spec in args.expect_count:
        name, sep, num = spec.rpartition("=")
        if not sep or not num.isdigit():
            return fail(f"bad --expect-count {spec!r}, want NAME=N")
        expect_counts[name] = int(num)

    src = open(args.file) if args.file else sys.stdin
    try:
        events = json.load(src)
    except json.JSONDecodeError as e:
        return fail(f"not valid JSON: {e}")
    if not isinstance(events, list):
        return fail("top-level value is not a JSON array")

    # Index the span events (the observer layer's phase events live on
    # other pids and carry no traceId; they are ignored here).
    spans = []
    by_span_id = {}
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            return fail(f"event {i} is not an object")
        a = ev.get("args") or {}
        if "traceId" not in a:
            continue
        tid, sid = a["traceId"], a.get("spanId", "")
        if not HEX32.match(str(tid)):
            return fail(f"event {i} ({ev.get('name')!r}): bad traceId {tid!r}")
        if not HEX16.match(str(sid)):
            return fail(f"event {i} ({ev.get('name')!r}): bad spanId {sid!r}")
        if ev.get("ph") != "X":
            return fail(f"event {i} ({ev.get('name')!r}): span event ph={ev.get('ph')!r}, want X")
        spans.append(ev)
        by_span_id[(tid, sid)] = ev

    if not spans:
        return fail("no span events (traceId args) in the trace")

    # Parent links: an exported parent must share the trace. A missing
    # parent is legal (ring eviction, or an inbound traceparent's remote
    # span) — a *cross-trace* parent never is.
    all_span_ids = {sid for (_, sid) in by_span_id}
    for ev in spans:
        a = ev["args"]
        parent = a.get("parentSpanId")
        if not parent:
            continue
        if (a["traceId"], parent) not in by_span_id and parent in all_span_ids:
            return fail(
                f"span {ev.get('name')!r} parent {parent} belongs to another trace"
            )

    names = {}
    for ev in spans:
        names[ev.get("name")] = names.get(ev.get("name"), 0) + 1
    missing = [n for n in args.expect if n not in names]
    if missing:
        return fail(f"expected span names missing: {missing} (have {sorted(names)})")

    if expect_counts and not args.trace_id:
        for name, want in expect_counts.items():
            got = names.get(name, 0)
            if got != want:
                return fail(f"span {name!r} appears {got} times, want exactly {want}")

    if args.trace_id:
        tid = args.trace_id.lower()
        tree = [ev for ev in spans if ev["args"]["traceId"] == tid]
        if not tree:
            return fail(f"no spans on trace {tid}")
        tree_names = {ev.get("name") for ev in tree}
        missing = [n for n in args.expect if n not in tree_names]
        if missing:
            return fail(
                f"trace {tid} is missing spans: {missing} (has {sorted(tree_names)})"
            )
        for name, want in expect_counts.items():
            got = sum(1 for ev in tree if ev.get("name") == name)
            if got != want:
                return fail(
                    f"trace {tid}: span {name!r} appears {got} times, want exactly {want}"
                )
        # Connectivity: every non-root span whose parent was exported must
        # reach a parentless span of the tree by walking parent links.
        ids = {ev["args"]["spanId"]: ev for ev in tree}
        for ev in tree:
            cur, hops = ev, 0
            while hops < 64:
                parent = cur["args"].get("parentSpanId")
                if not parent or parent not in ids:
                    break  # reached a root (or an unexported remote parent)
                cur = ids[parent]
                hops += 1
            if hops >= 64:
                return fail(f"span {ev.get('name')!r} parent chain does not terminate")
        print(
            f"tracecheck: trace {tid}: {len(tree)} spans, "
            f"{len(tree_names)} distinct names, all expectations met"
        )

    print(
        f"tracecheck: {len(spans)} span events across "
        f"{len({ev['args']['traceId'] for ev in spans})} traces — ok"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
