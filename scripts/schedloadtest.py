#!/usr/bin/env python3
"""Throughput smoke test for radiomisd's POST /v1/schedule.

Usage: schedloadtest.py HOST:PORT [--calls N] [--min-rate R] [--n VERTICES]

Drives N schedule requests over a handful of persistent HTTP connections
(distinct seeds, so every call actually plans — no cache hits), validates
every response (status 200, schema, a partition-sized plan), and asserts
the sustained rate meets --min-rate calls/sec. The serving contract is
thousands of small-graph calls per second; CI runs this with the default
threshold of 1000.

Exit status: 0 when every response validates and the rate clears the
threshold, 1 otherwise.
"""
import argparse
import http.client
import json
import sys
import threading
import time

SCHEMA = "radiomis.server/v1"


def worker(host, port, seeds, n, results, idx):
    conn = http.client.HTTPConnection(host, port, timeout=30)
    ok = 0
    try:
        for seed in seeds:
            body = json.dumps({"family": "gnp", "n": n, "seed": seed})
            conn.request(
                "POST", "/v1/schedule", body, {"Content-Type": "application/json"}
            )
            resp = conn.getresponse()
            data = resp.read()
            if resp.status != 200:
                results[idx] = (ok, f"seed {seed}: status {resp.status}: {data[:200]}")
                return
            doc = json.loads(data)
            if doc.get("schema") != SCHEMA:
                results[idx] = (ok, f"seed {seed}: schema {doc.get('schema')!r}")
                return
            scheduled = sum(len(b) for b in doc["batches"])
            if scheduled != doc["n"] or doc["stats"]["vertices"] != doc["n"]:
                results[idx] = (
                    ok,
                    f"seed {seed}: plan covers {scheduled} of {doc['n']} vertices",
                )
                return
            ok += 1
        results[idx] = (ok, None)
    finally:
        conn.close()


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("addr", help="daemon address, host:port")
    ap.add_argument("--calls", type=int, default=2000)
    ap.add_argument("--min-rate", type=float, default=1000.0)
    ap.add_argument("--n", type=int, default=64, help="vertices per conflict graph")
    ap.add_argument("--conns", type=int, default=4, help="persistent connections")
    args = ap.parse_args()
    host, _, port = args.addr.partition(":")
    port = int(port or 80)

    # Warm-up call (planner free list, CSR cache, connection setup) outside
    # the timed window.
    warm = [None]
    worker(host, port, [10**9], args.n, warm, 0)
    if warm[0][1] is not None:
        print(f"schedloadtest: warm-up failed: {warm[0][1]}", file=sys.stderr)
        return 1

    chunks = [list(range(i, args.calls, args.conns)) for i in range(args.conns)]
    results = [None] * args.conns
    threads = [
        threading.Thread(target=worker, args=(host, port, chunk, args.n, results, i))
        for i, chunk in enumerate(chunks)
    ]
    start = time.monotonic()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.monotonic() - start

    done = sum(r[0] for r in results)
    for r in results:
        if r[1] is not None:
            print(f"schedloadtest: FAIL after {done} calls: {r[1]}", file=sys.stderr)
            return 1
    rate = done / elapsed if elapsed > 0 else float("inf")
    verdict = "ok" if rate >= args.min_rate else "FAIL"
    print(
        f"schedloadtest: {verdict} — {done} calls in {elapsed:.2f}s = "
        f"{rate:.0f} calls/sec (threshold {args.min_rate:.0f})"
    )
    return 0 if rate >= args.min_rate else 1


if __name__ == "__main__":
    sys.exit(main())
