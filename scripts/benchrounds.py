#!/usr/bin/env python3
"""Check BenchmarkRun's deterministic rounds/op metric for engine drift.

Reads `go test -bench BenchmarkRun` output (a file argument or stdin) and
asserts that, for every workload size, the reference engine and the sharded
scheduler (standalone and pooled) report the identical rounds/op. The
metric is fully deterministic — seeds are fixed and all engines are
bit-identical by contract — so any disagreement means the scheduler's
simulation behavior drifted from the reference engine, not just its speed.

Exit status: 0 if all engines agree (and at least one workload was seen),
1 otherwise.
"""
import re
import sys

LINE = re.compile(
    r"^BenchmarkRun/(?P<engine>[\w-]+)/(?P<work>[\w=/.]+?)(?:-\d+)?\s+\d+\s+(?P<metrics>.*)$"
)
ROUNDS = re.compile(r"([\d.]+) rounds/op")


def main(argv):
    src = open(argv[1]) if len(argv) > 1 else sys.stdin
    seen = {}  # workload -> {engine: rounds/op}
    for line in src:
        m = LINE.match(line.strip())
        if not m:
            continue
        r = ROUNDS.search(m.group("metrics"))
        if not r:
            continue
        seen.setdefault(m.group("work"), {})[m.group("engine")] = float(r.group(1))

    if not seen:
        print("benchrounds: no BenchmarkRun results found in input", file=sys.stderr)
        return 1

    ok = True
    for work, engines in sorted(seen.items()):
        values = sorted(set(engines.values()))
        status = "ok" if len(values) == 1 else "DRIFT"
        if len(values) != 1:
            ok = False
        detail = ", ".join(f"{e}={v}" for e, v in sorted(engines.items()))
        print(f"{status:5}  {work}: {detail}")
        if "reference" not in engines or len(engines) < 2:
            print(f"WARN   {work}: fewer than two engines reported", file=sys.stderr)
    if not ok:
        print("benchrounds: engines disagree on rounds/op — scheduler behavior drifted",
              file=sys.stderr)
        return 1
    print(f"benchrounds: all engines agree on rounds/op across {len(seen)} workloads")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
