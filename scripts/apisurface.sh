#!/bin/sh
# Print the exported API surface of the public radiomis facade — every
# exported constant, function, type, and method signature, one per line —
# in a stable order. CI diffs this against the committed API_baseline.txt
# (warn-only) so unintentional facade changes are flagged on every PR;
# intentional changes regenerate the baseline:
#
#   scripts/apisurface.sh > API_baseline.txt
set -e
cd "$(dirname "$0")/.."
go doc -short radiomis
