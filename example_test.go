package radiomis_test

import (
	"fmt"

	"radiomis"
)

// The basic workflow: generate a topology, run the energy-optimal CD
// algorithm, verify, and inspect the energy bill.
func ExampleSolveCD() {
	g := radiomis.Cycle(64)
	p := radiomis.DefaultParams(g.N(), g.MaxDegree())
	res, err := radiomis.Solve(g, radiomis.Spec{Algorithm: "cd", Params: p, Seed: 41})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("valid:", res.Check(g) == nil)
	fmt.Println("energy below rounds:", res.MaxEnergy() < res.Rounds)
	// Output:
	// valid: true
	// energy below rounds: true
}

// Algorithm 1 runs unchanged in the beeping model and makes identical
// decisions under identical randomness (§3.1).
func ExampleSolveBeep() {
	g := radiomis.Grid(8, 8)
	p := radiomis.DefaultParams(g.N(), g.MaxDegree())
	cd, _ := radiomis.SolveCD(g, p, 7)
	beep, _ := radiomis.SolveBeep(g, p, 7)
	same := true
	for v := range cd.Status {
		if cd.Status[v] != beep.Status[v] {
			same = false
		}
	}
	fmt.Println("identical decisions:", same)
	// Output:
	// identical decisions: true
}

// The no-CD algorithm trades rounds for energy: its awake count stays far
// below its round count.
func ExampleSolveNoCD() {
	g := radiomis.GNP(64, 0.1, 3)
	p := radiomis.DefaultParams(g.N(), g.MaxDegree())
	res, err := radiomis.SolveNoCD(g, p, 5)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("valid:", res.Check(g) == nil)
	fmt.Println("energy ≤ rounds/10:", res.MaxEnergy() <= res.Rounds/10)
	// Output:
	// valid: true
	// energy ≤ rounds/10: true
}

// An MIS is the foundation of a communication backbone (§1): clusterheads
// plus a few connectors form a connected dominating set with a
// collision-free broadcast schedule.
func ExampleBuildBackbone() {
	g := radiomis.Grid(10, 10)
	p := radiomis.DefaultParams(g.N(), g.MaxDegree())
	res, _ := radiomis.SolveCD(g, p, 1)
	b, err := radiomis.BuildBackbone(g, res.InMIS)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	c := radiomis.ColorBackbone(g, b)
	bc, _ := radiomis.Broadcast(g, b, c, 0, 99, 0, 2)
	fmt.Println("backbone valid:", b.Check(g) == nil)
	fmt.Println("schedule valid:", c.Check(g) == nil)
	fmt.Println("everyone informed:", bc.AllInformed())
	// Output:
	// backbone valid: true
	// schedule valid: true
	// everyone informed: true
}

// CheckMIS distinguishes the two failure modes.
func ExampleCheckMIS() {
	g := radiomis.Path(3)
	fmt.Println(radiomis.CheckMIS(g, []bool{true, false, true}))
	fmt.Println(radiomis.CheckMIS(g, []bool{true, true, false}) != nil)
	fmt.Println(radiomis.CheckMIS(g, []bool{false, false, false}) != nil)
	// Output:
	// <nil>
	// true
	// true
}
