package radiomis

import (
	"testing"
)

func TestFacadeGraphConstructors(t *testing.T) {
	tests := []struct {
		name string
		g    *Graph
		n, m int
	}{
		{name: "new", g: NewGraph(5), n: 5, m: 0},
		{name: "complete", g: Complete(4), n: 4, m: 6},
		{name: "cycle", g: Cycle(5), n: 5, m: 5},
		{name: "path", g: Path(4), n: 4, m: 3},
		{name: "star", g: Star(4), n: 4, m: 3},
		{name: "grid", g: Grid(2, 3), n: 6, m: 7},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if tt.g.N() != tt.n || tt.g.M() != tt.m {
				t.Errorf("n=%d m=%d, want n=%d m=%d", tt.g.N(), tt.g.M(), tt.n, tt.m)
			}
		})
	}
}

func TestFacadeRandomGraphsDeterministic(t *testing.T) {
	a := GNP(100, 0.1, 7)
	b := GNP(100, 0.1, 7)
	if a.M() != b.M() {
		t.Error("GNP not deterministic in seed")
	}
	if tr := RandomTree(50, 3); tr.M() != 49 {
		t.Errorf("tree edges = %d, want 49", tr.M())
	}
	g, pts := UnitDisk(50, 0.3, 4)
	if g.N() != 50 || len(pts) != 50 {
		t.Error("unit disk shape wrong")
	}
}

func TestFacadeSolversEndToEnd(t *testing.T) {
	g := GNP(96, 0.08, 11)
	p := DefaultParams(g.N(), g.MaxDegree())
	solvers := map[string]func(*Graph, Params, uint64) (*Result, error){
		"cd":        SolveCD,
		"beep":      SolveBeep,
		"nocd":      SolveNoCD,
		"lowdegree": SolveLowDegree,
		"naive-cd":  SolveNaiveCD,
	}
	for name, solve := range solvers {
		t.Run(name, func(t *testing.T) {
			res, err := solve(g, p, 5)
			if err != nil {
				t.Fatal(err)
			}
			if err := res.Check(g); err != nil {
				t.Fatalf("invalid MIS: %v", err)
			}
			if res.MaxEnergy() == 0 || res.Rounds == 0 {
				t.Error("suspicious zero energy or rounds")
			}
		})
	}
}

func TestFacadeReferenceAlgorithms(t *testing.T) {
	g := GNP(80, 0.1, 13)
	if err := CheckMIS(g, GreedyMIS(g)); err != nil {
		t.Errorf("greedy: %v", err)
	}
	if err := CheckMIS(g, LubyMIS(g, 5)); err != nil {
		t.Errorf("luby: %v", err)
	}
}

func TestFacadeParams(t *testing.T) {
	d := DefaultParams(1024, 16)
	if d.N != 1024 || d.Delta != 16 {
		t.Error("DefaultParams fields wrong")
	}
	pp := PaperParams(1024, 16)
	if pp.C <= d.C {
		t.Error("PaperParams should be more conservative than defaults")
	}
}

func TestFacadeStatusConstants(t *testing.T) {
	if StatusInMIS == StatusOutMIS || StatusInMIS == StatusUndecided {
		t.Error("status constants collide")
	}
}

func TestFacadeCongestLuby(t *testing.T) {
	g := GNP(120, 0.08, 9)
	res, err := SolveCongestLuby(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Check(g); err != nil {
		t.Fatalf("invalid MIS: %v", err)
	}
	if res.AvgAwake() <= 0 || res.MaxAwake() == 0 {
		t.Error("awake accounting empty")
	}
}

func TestFacadeBackbonePipeline(t *testing.T) {
	g := Grid(8, 8)
	p := DefaultParams(g.N(), g.MaxDegree())
	res, err := SolveCD(g, p, 6)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildBackbone(g, res.InMIS)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Check(g); err != nil {
		t.Fatal(err)
	}
	c := ColorBackbone(g, b)
	if err := c.Check(g); err != nil {
		t.Fatal(err)
	}
	bc, err := Broadcast(g, b, c, 0, 5, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !bc.AllInformed() {
		t.Error("facade broadcast incomplete")
	}
	nf, err := NaiveFlood(g, 0, 5, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !nf.AllInformed() {
		t.Error("facade naive flood incomplete")
	}
}

func TestFacadeElectLeader(t *testing.T) {
	res, err := ElectLeader(40, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Leader < 0 || res.Leader >= 40 {
		t.Errorf("leader %d out of range", res.Leader)
	}
}

func TestFacadeElectCoordinator(t *testing.T) {
	g := Grid(6, 6)
	b, err := BuildBackbone(g, GreedyMIS(g))
	if err != nil {
		t.Fatal(err)
	}
	c := ColorBackbone(g, b)
	res, err := ElectCoordinator(g, b, c, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Coordinators()) != 1 {
		t.Errorf("coordinators = %v, want 1", res.Coordinators())
	}
}
