// Modelcompare: the communication-model hierarchy of §1.4, measured. The
// same network solves MIS under three models — SLEEPING-CONGEST
// (collision-free message passing), SLEEPING-RADIO with collision
// detection (Algorithm 1), and SLEEPING-RADIO without collision detection
// (Algorithm 2) — and the example prints what each weakening of the model
// costs in awake rounds, with a text histogram of the per-node energy
// distribution.
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"

	"radiomis"
	"radiomis/internal/congest"
	"radiomis/internal/graph"
	"radiomis/internal/rng"
)

func main() {
	const n = 192
	g := graph.GNP(n, 8.0/n, rng.New(13))
	fmt.Printf("network: %v\n\n", g)
	params := radiomis.DefaultParams(g.N(), g.MaxDegree())

	// SLEEPING-CONGEST: classical Luby, no collisions to fight.
	luby, err := congest.SolveLuby(g, 5)
	if err != nil {
		log.Fatal(err)
	}
	if err := luby.Check(g); err != nil {
		log.Fatal(err)
	}

	// SLEEPING-RADIO with collision detection: Algorithm 1.
	cd, err := radiomis.Solve(g, radiomis.Spec{Algorithm: "cd", Params: params, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	if err := cd.Check(g); err != nil {
		log.Fatal(err)
	}

	// SLEEPING-RADIO without collision detection: Algorithm 2.
	nocd, err := radiomis.Solve(g, radiomis.Spec{Algorithm: "nocd", Params: params, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	if err := nocd.Check(g); err != nil {
		log.Fatal(err)
	}

	fmt.Println("model                      worst awake   avg awake      rounds")
	fmt.Printf("sleeping-congest (luby)    %11d   %9.1f   %9d\n", luby.MaxAwake(), luby.AvgAwake(), luby.Rounds)
	fmt.Printf("radio + CD   (algorithm 1) %11d   %9.1f   %9d\n", cd.MaxEnergy(), cd.AvgEnergy(), cd.Rounds)
	fmt.Printf("radio no-CD  (algorithm 2) %11d   %9.1f   %9d\n", nocd.MaxEnergy(), nocd.AvgEnergy(), nocd.Rounds)

	fmt.Println("\nper-node energy distribution (radio + CD, Algorithm 1):")
	histogram(cd.Energy)
	fmt.Println("\nper-node energy distribution (radio no-CD, Algorithm 2):")
	histogram(nocd.Energy)

	fmt.Println("\nreading: collision-freeness (CONGEST) makes MIS nearly free;")
	fmt.Println("collision detection keeps the worst node at Θ(log n) awake rounds")
	fmt.Println("(Theorem 2, optimal); losing it costs the Θ(log n) → Θ(log² n·loglog n)")
	fmt.Println("gap of Theorem 10 — but stays far below the round count.")
}

// histogram prints a small log-bucketed text histogram.
func histogram(energy []uint64) {
	sorted := append([]uint64(nil), energy...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	buckets := make(map[int]int)
	for _, e := range energy {
		b := 0
		for v := uint64(1); v < e; v *= 2 {
			b++
		}
		buckets[b]++
	}
	maxBucket := 0
	for b := range buckets {
		if b > maxBucket {
			maxBucket = b
		}
	}
	for b := 0; b <= maxBucket; b++ {
		lo := uint64(0)
		if b > 0 {
			lo = 1 << (b - 1)
		}
		hi := uint64(1) << b
		count := buckets[b]
		fmt.Printf("  %6d–%-6d %4d %s\n", lo, hi, count, strings.Repeat("█", count/2+btoi(count > 0)))
	}
	fmt.Printf("  median %d, p90 %d, max %d\n",
		sorted[len(sorted)/2], sorted[len(sorted)*9/10], sorted[len(sorted)-1])
}

func btoi(b bool) int {
	if b {
		return 1
	}
	return 0
}
