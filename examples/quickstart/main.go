// Quickstart: build a random radio network, run the paper's energy-optimal
// CD-model MIS algorithm (Algorithm 1), verify the result, and look at the
// energy profile — the quantity the paper is about.
package main

import (
	"fmt"
	"log"

	"radiomis"
)

func main() {
	// An arbitrary, unknown topology: G(n, p) with constant average degree.
	const n = 1024
	g := radiomis.GNP(n, 8.0/n, 7)
	fmt.Println("network:", g)

	// Shared knowledge: an upper bound on n and on the maximum degree.
	params := radiomis.DefaultParams(g.N(), g.MaxDegree())

	// Run Algorithm 1 in the collision-detection model. Everything is
	// deterministic in (graph, params, seed).
	res, err := radiomis.Solve(g, radiomis.Spec{Algorithm: "cd", Params: params, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	// Verify the two MIS properties: independence and maximality.
	if err := res.Check(g); err != nil {
		log.Fatal("not an MIS: ", err)
	}

	fmt.Printf("MIS size:        %d of %d nodes\n", res.SetSize(), g.N())
	fmt.Printf("rounds:          %d (Θ(log² n) budget)\n", res.Rounds)
	fmt.Printf("max energy:      %d awake rounds (Θ(log n) — the paper's headline)\n", res.MaxEnergy())
	fmt.Printf("avg energy:      %.1f awake rounds\n", res.AvgEnergy())

	// The same program runs unchanged in the beeping model (§3.1) and
	// makes identical decisions under identical randomness.
	beep, err := radiomis.Solve(g, radiomis.Spec{Algorithm: "beep", Params: params, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	same := true
	for v := range res.Status {
		if res.Status[v] != beep.Status[v] {
			same = false
			break
		}
	}
	fmt.Printf("beeping model:   identical decisions = %v, max energy = %d\n", same, beep.MaxEnergy())
}
