// Backbone: the end-to-end pipeline the paper's introduction motivates —
// "first construct an MIS, then use it as a building block for setting up
// a communication backbone". A unit-disk sensor field elects clusterheads
// with Algorithm 2 (no-CD), the heads are interconnected into a connected
// dominating set, backbone members are distance-2 colored into a
// collision-free TDMA schedule, and a network-wide broadcast runs over it.
// The energy bill is compared against always-awake naive flooding.
package main

import (
	"fmt"
	"log"
	"math"

	"radiomis"
)

func main() {
	// The sensor field.
	const n = 225
	radius := math.Sqrt(12.0 / (math.Pi * n))
	field, _ := radiomis.UnitDisk(n, radius, 31)
	fmt.Printf("sensor field: %v\n\n", field)

	// Step 1 — MIS via the paper's energy-efficient no-CD algorithm.
	params := radiomis.DefaultParams(field.N(), field.MaxDegree())
	misRun, err := radiomis.Solve(field, radiomis.Spec{Algorithm: "nocd", Params: params, Seed: 8})
	if err != nil {
		log.Fatal(err)
	}
	if err := misRun.Check(field); err != nil {
		log.Fatal("MIS invalid: ", err)
	}
	fmt.Printf("step 1  MIS:       %d clusterheads elected (max energy %d awake rounds)\n",
		misRun.SetSize(), misRun.MaxEnergy())

	// Step 2 — backbone: connect the heads into a dominating set.
	bb, err := radiomis.BuildBackbone(field, misRun.InMIS)
	if err != nil {
		log.Fatal(err)
	}
	if err := bb.Check(field); err != nil {
		log.Fatal("backbone invalid: ", err)
	}
	fmt.Printf("step 2  backbone:  %d members (%d heads + %d connectors) — %.0f%% of the network\n",
		bb.Size(), bb.Heads(), bb.Connectors(), 100*float64(bb.Size())/float64(field.N()))

	// Step 3 — TDMA schedule: distance-2 coloring ⇒ collision-free slots.
	coloring := radiomis.ColorBackbone(field, bb)
	if err := coloring.Check(field); err != nil {
		log.Fatal("coloring invalid: ", err)
	}
	fmt.Printf("step 3  schedule:  %d TDMA slots per frame (distance-2 coloring)\n", coloring.Count)

	// Step 4 — elect a global coordinator over the backbone (max-rank
	// flood through the TDMA schedule).
	coord, err := radiomis.ElectCoordinator(field, bb, coloring, 0, 9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("step 4  leader:    node %v elected global coordinator in %d rounds\n",
		coord.Coordinators(), coord.Rounds)

	// Step 5 — broadcast from node 0, versus naive flooding.
	bc, err := radiomis.Broadcast(field, bb, coloring, 0, 0xcafe, 0, 9)
	if err != nil {
		log.Fatal(err)
	}
	nf, err := radiomis.NaiveFlood(field, 0, 0xcafe, 0, 9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("step 5  broadcast: informed %d/%d nodes in %d rounds\n\n",
		count(bc.Informed), field.N(), bc.Rounds)

	fmt.Println("                      rounds   max energy   avg energy")
	fmt.Printf("backbone broadcast  %8d   %10d   %10.1f\n", bc.Rounds, bc.MaxEnergy(), bc.AvgEnergy())
	fmt.Printf("naive flooding      %8d   %10d   %10.1f\n", nf.Rounds, nf.MaxEnergy(), nf.AvgEnergy())
	if !nf.AllInformed() {
		fmt.Println("(naive flooding additionally failed to inform everyone)")
	}
	fmt.Printf("\nper-message energy saving: %.1f× on average — the backbone pays for\n",
		nf.AvgEnergy()/bc.AvgEnergy())
	fmt.Println("itself after a handful of broadcasts, which is why MIS construction")
	fmt.Println("energy (the paper's subject) is the quantity worth optimizing.")
}

func count(bs []bool) int {
	c := 0
	for _, b := range bs {
		if b {
			c++
		}
	}
	return c
}
