// Sensornet: the paper's motivating application (§1). A battery-powered
// ad-hoc sensor field is modeled as a unit-disk graph; an MIS provides the
// clusterhead backbone for the communication infrastructure. Sensors have
// no collision detection, so this example runs Algorithm 2 (the no-CD
// algorithm), verifies the backbone, and compares the energy bill against
// the best-known-prior Davies-style baseline.
package main

import (
	"fmt"
	"log"
	"math"

	"radiomis"
)

func main() {
	// 256 sensors scattered uniformly over the unit square; radio range
	// chosen for an expected neighborhood of ~10 sensors.
	const n = 256
	radius := math.Sqrt(10.0 / (math.Pi * n))
	field, pts := radiomis.UnitDisk(n, radius, 99)
	fmt.Printf("sensor field: %v (radio range %.3f)\n", field, radius)

	params := radiomis.DefaultParams(field.N(), field.MaxDegree())

	// Elect clusterheads with the energy-efficient no-CD algorithm.
	backbone, err := radiomis.Solve(field, radiomis.Spec{Algorithm: "nocd", Params: params, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	if err := backbone.Check(field); err != nil {
		log.Fatal("backbone invalid: ", err)
	}
	fmt.Printf("clusterheads: %d (every sensor is one or hears one)\n", backbone.SetSize())

	// Cluster statistics: every non-head sensor attaches to an adjacent
	// clusterhead (the nearest one, as a routing layer would).
	heads := make([]int, 0, backbone.SetSize())
	for v, in := range backbone.InMIS {
		if in {
			heads = append(heads, v)
		}
	}
	clusterSize := make(map[int]int, len(heads))
	for v := range backbone.InMIS {
		if backbone.InMIS[v] {
			clusterSize[v]++ // the head itself
			continue
		}
		best, bestDist := -1, math.Inf(1)
		for _, w := range field.Neighbors(v) {
			if !backbone.InMIS[w] {
				continue
			}
			d := dist(pts[v], pts[w])
			if d < bestDist {
				best, bestDist = w, d
			}
		}
		clusterSize[best]++
	}
	largest := 0
	for _, s := range clusterSize {
		if s > largest {
			largest = s
		}
	}
	fmt.Printf("clusters: %d, largest has %d sensors\n", len(heads), largest)

	// Energy: the point of the paper. Compare against the Davies-style
	// baseline (best known prior for arbitrary topology, §4.2) on the
	// same field.
	baseline, err := radiomis.Solve(field, radiomis.Spec{Algorithm: "lowdegree", Params: params, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	if err := baseline.Check(field); err != nil {
		log.Fatal("baseline invalid: ", err)
	}
	fmt.Println("\nenergy bill (awake rounds):")
	fmt.Printf("  algorithm 2:      max %5d   avg %7.1f   rounds %d\n",
		backbone.MaxEnergy(), backbone.AvgEnergy(), backbone.Rounds)
	fmt.Printf("  davies baseline:  max %5d   avg %7.1f   rounds %d\n",
		baseline.MaxEnergy(), baseline.AvgEnergy(), baseline.Rounds)
	fmt.Println("\n(the asymptotic separation is log Δ vs log log n per §5 —")
	fmt.Println(" see EXPERIMENTS.md E5/E6 for the scaling measurements)")
}

func dist(a, b [2]float64) float64 {
	dx, dy := a[0]-b[0], a[1]-b[1]
	return math.Hypot(dx, dy)
}
