// Beeping: §3.1 of the paper observes that Algorithm 1 performs only unary
// communication, so it runs verbatim in the beeping model. This example
// elects an MIS on a grid of beeping devices and renders the result — MIS
// nodes form the classic scattered-dominating pattern — then double-checks
// that the beeping run matches the CD run decision-for-decision.
package main

import (
	"fmt"
	"log"
	"strings"

	"radiomis"
)

func main() {
	const rows, cols = 16, 32
	g := radiomis.Grid(rows, cols)
	params := radiomis.DefaultParams(g.N(), g.MaxDegree())

	res, err := radiomis.Solve(g, radiomis.Spec{Algorithm: "beep", Params: params, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	if err := res.Check(g); err != nil {
		log.Fatal("not an MIS: ", err)
	}

	fmt.Printf("beeping grid %d×%d: |MIS| = %d, max energy = %d beeps+listens, rounds = %d\n\n",
		rows, cols, res.SetSize(), res.MaxEnergy(), res.Rounds)
	var sb strings.Builder
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if res.InMIS[r*cols+c] {
				sb.WriteByte('#')
			} else {
				sb.WriteByte('.')
			}
		}
		sb.WriteByte('\n')
	}
	fmt.Print(sb.String())

	// Same seed in the CD radio model: identical behaviour (§3.1).
	cd, err := radiomis.Solve(g, radiomis.Spec{Algorithm: "cd", Params: params, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	for v := range res.Status {
		if res.Status[v] != cd.Status[v] {
			log.Fatalf("node %d diverged between beeping and CD models", v)
		}
	}
	fmt.Println("\nbeeping run matches the CD-model run decision-for-decision ✓")
}
