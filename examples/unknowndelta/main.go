// Unknowndelta: §1.1 of the paper sketches how to run the algorithms when
// no degree bound Δ is shared: guess Δ̂ = 2^(2^i), run, detect damage, and
// escalate. This example shows the guess ladder, runs the wrapper on a
// network whose true Δ exceeds the early guesses, and measures the
// overhead against the known-Δ run — O(log log n)× energy, O(1)× rounds.
package main

import (
	"fmt"
	"log"

	"radiomis"
)

func main() {
	const n = 96
	g := radiomis.GNP(n, 12.0/n, 21)
	delta := g.MaxDegree()
	fmt.Printf("network: %v (true Δ = %d, but the nodes don't know it)\n\n", g, delta)

	params := radiomis.DefaultParams(g.N(), delta)

	known, err := radiomis.Solve(g, radiomis.Spec{Algorithm: "nocd", Params: params, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	unknown, err := radiomis.Solve(g, radiomis.Spec{Algorithm: "unknown-delta", Params: params, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	if err := unknown.Check(g); err != nil {
		log.Fatal("unknown-Δ run invalid: ", err)
	}

	fmt.Println("guess ladder Δ̂ = 2^(2^i): 2, 4, 16, 256, … (doubly exponential,")
	fmt.Println("so only O(log log Δ) attempts are ever needed)")
	fmt.Printf("\n                 known Δ      unknown Δ    overhead\n")
	fmt.Printf("max energy:      %7d      %9d    %.2f×\n",
		known.MaxEnergy(), unknown.MaxEnergy(),
		float64(unknown.MaxEnergy())/float64(known.MaxEnergy()))
	fmt.Printf("rounds:          %7d      %9d    %.2f×\n",
		known.Rounds, unknown.Rounds,
		float64(unknown.Rounds)/float64(known.Rounds))
	fmt.Printf("MIS size:        %7d      %9d\n", known.SetSize(), unknown.SetSize())
	fmt.Println("\nboth runs produce valid maximal independent sets; the wrapper pays")
	fmt.Println("a small constant round factor and a log log-type energy factor (§1.1)")
}
